"""The cluster front-end: one listening socket, many shard processes.

Clients connect to the router exactly as they would to a single
:class:`~repro.serve.server.CountingServer` — same line protocol, same
responses — and the router pins each connection to one shard via the
consistent :class:`~repro.cluster.hashing.HashRing` over the peer address.
Because shards dispense disjoint residue classes (shard ``i`` of ``S``
serves ``i + S·k``), a shard's ``OK`` line is already cluster-correct and
the router never rewrites payload bytes.

Two forwarding modes:

* ``"line"`` (default) — the router parses each request line.  ``INC``
  passes through the per-client token bucket (``ERR throttled`` when
  empty) and is forwarded verbatim; ``STATS``/``METRICS`` are answered by
  the *router* with a cluster-wide aggregation (per-shard stats merged,
  per-shard Prometheus payloads relabelled with ``shard="i"``);
  ``PING``/``FLIGHT`` are answered locally.
* ``"splice"`` — the shard is chosen at accept time and the router then
  shovels raw bytes both ways without parsing.  This is the throughput
  path for benchmarks: per-request router overhead is one ``memchr`` for
  the forwarded-line counter.  Rate limiting degrades to pacing (the
  router cannot inject an ``ERR`` line mid-stream without tracking
  request framing, so it delays the offending chunk instead).

Failure semantics: the router never retries an ``INC`` on a dead shard —
a lost in-flight request must surface to the client (whose reconnect path
accounts the risked tokens for the exactly-once audit).  A shard that is
down at request time yields ``ERR overloaded shard <i> unavailable``,
which clients already treat as a clean, value-free rejection.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Mapping

from ..serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode_error,
    encode_payload,
    encode_stats,
    parse_request,
)
from .hashing import HashRing
from .ratelimit import ClientRateLimiter

__all__ = ["ClusterRouter"]

_CHUNK = 1 << 16
_DRAIN_HIGH_WATER = 1 << 18


class _Upstream:
    """One client's lazily-opened connection to its shard."""

    __slots__ = ("reader", "writer")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer


class ClusterRouter:
    """Route one listening address onto a set of shard servers.

    Parameters
    ----------
    shards:
        ``{shard_id: (host, port)}`` or a callable ``shard_id -> (host,
        port)``.  Looked up per connection/reconnect, so a live mapping
        (ports are pinned across shard restarts) keeps routing correct
        through chaos.
    mode:
        ``"line"`` or ``"splice"`` (see module docstring).
    rate_limiter:
        Optional :class:`ClientRateLimiter`; each ``INC n`` costs ``n``.
    worker_info:
        Optional callable returning ``{shard_id: dict}`` of supervisor
        facts (pid, restarts, recovered_total) merged into ``STATS``.
    """

    def __init__(
        self,
        shards,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "line",
        rate_limiter: ClientRateLimiter | None = None,
        replicas: int = 64,
        worker_info: Callable[[], dict] | None = None,
    ) -> None:
        if mode not in ("line", "splice"):
            raise ValueError(f"mode must be 'line' or 'splice', got {mode!r}")
        if callable(shards):
            raise TypeError("pass a mapping of shard addresses; a live dict works")
        if not isinstance(shards, Mapping) or not shards:
            raise ValueError("shards must be a non-empty mapping {shard_id: (host, port)}")
        self.shards = shards
        self.host = host
        self.port = port
        self.mode = mode
        self.rate_limiter = rate_limiter
        self.worker_info = worker_info
        self.ring = HashRing(sorted(shards), replicas=replicas)
        self._server: asyncio.AbstractServer | None = None
        self._ctrl: dict[int, object] = {}  # shard_id -> TCPCounterClient
        # Always-maintained counters (mirrored into METRICS).
        self.connections = 0
        self.active = 0
        self.forwarded = 0
        self.throttled = 0
        self.shard_errors = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("router is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        handler = self._handle_line if self.mode == "line" else self._handle_splice
        self._server = await asyncio.start_server(handler, self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for client in self._ctrl.values():
            try:
                await client.close()
            except (ConnectionError, OSError):  # pragma: no cover — teardown race
                pass
        self._ctrl.clear()

    async def __aenter__(self) -> "ClusterRouter":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    def shard_address(self, shard_id: int) -> tuple[str, int]:
        return tuple(self.shards[shard_id])

    def shard_for(self, key: str) -> int:
        return self.ring.node_for(key)

    def router_stats(self) -> dict:
        return {
            "mode": self.mode,
            "connections": self.connections,
            "active": self.active,
            "forwarded": self.forwarded,
            "throttled": self.throttled,
            "shard_errors": self.shard_errors,
            "rate_limited_clients": len(self.rate_limiter) if self.rate_limiter else 0,
        }

    # -- line mode ------------------------------------------------------------

    async def _handle_line(self, reader, writer) -> None:
        self.connections += 1
        self.active += 1
        peer = writer.get_extra_info("peername") or ("?", 0)
        key = f"{peer[0]}:{peer[1]}"
        shard_id = self.shard_for(key)
        upstream: _Upstream | None = None
        try:
            while True:
                try:
                    raw = await reader.readline()
                except ConnectionError:
                    return
                if not raw:
                    return
                if len(raw) > MAX_LINE_BYTES:
                    writer.write(encode_error("bad-request", "line too long"))
                    await writer.drain()
                    return
                try:
                    req = parse_request(raw.decode("ascii", errors="replace"))
                except ProtocolError as exc:
                    writer.write(encode_error("bad-request", str(exc)))
                    await writer.drain()
                    continue
                if req.verb == "inc":
                    if self.rate_limiter is not None and not self.rate_limiter.allow(
                        key, req.amount
                    ):
                        self.throttled += 1
                        writer.write(encode_error("throttled", f"client {key} over rate limit"))
                        await writer.drain()
                        continue
                    if upstream is None or upstream.writer.is_closing():
                        upstream = await self._connect_upstream(shard_id)
                        if upstream is None:
                            writer.write(
                                encode_error("overloaded", f"shard {shard_id} unavailable")
                            )
                            await writer.drain()
                            continue
                    response = await self._forward(upstream, raw)
                    if response is None:
                        # The shard died with this request in flight.  Do not
                        # retry (the values may be committed — the client's
                        # reconnect path accounts the risked tokens); drop the
                        # connection so the client knows the request is lost.
                        self.shard_errors += 1
                        upstream = None
                        return
                    self.forwarded += 1
                    writer.write(response)
                elif req.verb == "ping":
                    writer.write(b"OK pong\n")
                elif req.verb == "stats":
                    writer.write(encode_stats(await self.cluster_stats()))
                elif req.verb == "metrics":
                    body = await self.cluster_metrics()
                    writer.write(encode_payload(body.encode("ascii", errors="replace")))
                else:  # flight
                    writer.write(encode_payload(self._flight_json()))
                try:
                    await writer.drain()
                except ConnectionError:
                    return
        finally:
            self.active -= 1
            if self.rate_limiter is not None:
                self.rate_limiter.forget(key)
            if upstream is not None:
                upstream.writer.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _connect_upstream(self, shard_id: int) -> _Upstream | None:
        try:
            r, w = await asyncio.open_connection(*self.shard_address(shard_id))
        except (ConnectionError, OSError):
            self.shard_errors += 1
            return None
        return _Upstream(r, w)

    async def _forward(self, upstream: _Upstream, raw: bytes) -> bytes | None:
        """One request line to the shard, one response line back."""
        try:
            upstream.writer.write(raw)
            await upstream.writer.drain()
            line = await upstream.reader.readline()
        except (ConnectionError, OSError):
            return None
        if not line:
            return None
        return line

    # -- splice mode ----------------------------------------------------------

    async def _handle_splice(self, reader, writer) -> None:
        self.connections += 1
        self.active += 1
        peer = writer.get_extra_info("peername") or ("?", 0)
        key = f"{peer[0]}:{peer[1]}"
        shard_id = self.shard_for(key)
        upstream = await self._connect_upstream(shard_id)
        if upstream is None:
            writer.write(encode_error("overloaded", f"shard {shard_id} unavailable"))
            try:
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()
            self.active -= 1
            return
        try:
            await asyncio.gather(
                self._pump(reader, upstream.writer, key=key, count=True),
                self._pump(upstream.reader, writer),
            )
        finally:
            self.active -= 1
            for w in (upstream.writer, writer):
                w.close()
            for w in (upstream.writer, writer):
                try:
                    await w.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _pump(self, reader, writer, *, key: str | None = None, count: bool = False) -> None:
        """Shovel bytes one way until EOF; half-closes the write side."""
        try:
            while True:
                chunk = await reader.read(_CHUNK)
                if not chunk:
                    break
                if count:
                    n = chunk.count(b"\n")
                    self.forwarded += n
                    if self.rate_limiter is not None and n:
                        wait = self.rate_limiter.eta(key, n)
                        if wait > 0:
                            self.throttled += 1
                            await asyncio.sleep(wait)
                        self.rate_limiter.allow(key, n)
                writer.write(chunk)
                if writer.transport.get_write_buffer_size() > _DRAIN_HIGH_WATER:
                    await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (ConnectionError, OSError, RuntimeError):
                pass

    # -- aggregation ----------------------------------------------------------

    async def cluster_stats(self) -> dict:
        """The cluster-wide ``STATS`` payload.

        Top-level keys mirror a single shard's stats (summed where that is
        meaningful) so existing consumers keep working; the ``"cluster"``
        key carries the router view and one entry per shard, which is what
        ``repro top`` switches its layout on.
        """
        shard_ids = sorted(self.shards)
        results = await asyncio.gather(*(self._shard_stats(sid) for sid in shard_ids))
        infos = {}
        if self.worker_info is not None:
            try:
                infos = self.worker_info()
            except Exception:  # noqa: BLE001 — supervisor info is best-effort
                infos = {}
        shards = []
        agg = {"issued": 0, "submitted": 0, "rejected": 0, "queue_depth": 0, "queue_limit": 0}
        network = None
        batch_means = []
        for sid, res in zip(shard_ids, results):
            host, port = self.shard_address(sid)
            entry = {"shard_id": sid, "host": host, "port": port}
            info = infos.get(sid, {})
            for k in ("pid", "up", "restarts", "recovered_total", "wal_path"):
                if k in info:
                    entry[k] = info[k]
            if res is None:
                entry["reachable"] = False
                entry.setdefault("up", False)
            else:
                stats, p99 = res
                entry["reachable"] = True
                entry.setdefault("up", True)
                for k in (
                    "issued",
                    "submitted",
                    "rejected",
                    "queue_depth",
                    "queue_limit",
                    "mean_batch_size",
                    "value_base",
                    "value_stride",
                ):
                    if k in stats:
                        entry[k] = stats[k]
                entry["request_p99_s"] = p99
                if network is None:
                    network = stats.get("network")
                for k in agg:
                    agg[k] += stats.get(k, 0) or 0
                if stats.get("mean_batch_size"):
                    batch_means.append(stats["mean_batch_size"])
            shards.append(entry)
        out = {
            "cluster": {
                "num_shards": len(shard_ids),
                "value_stride": len(shard_ids),
                "router": self.router_stats(),
                "shards": shards,
            },
            "network": network or {},
            "mean_batch_size": (sum(batch_means) / len(batch_means)) if batch_means else None,
        }
        out.update(agg)
        return out

    async def _shard_stats(self, shard_id: int):
        """``(stats, request_p99_s)`` for one shard, None when unreachable."""
        for _attempt in range(2):  # one reconnect: the shard may have restarted
            client = await self._control(shard_id)
            if client is None:
                continue
            try:
                stats = await client.stats()
                return stats, await self._shard_p99(client)
            except (ConnectionError, OSError, ProtocolError):
                self._drop_control(shard_id)
        return None

    async def _shard_p99(self, client) -> float | None:
        """p99 request latency from the shard's own METRICS, when obs is on."""
        from ..obs.exposition import (
            histogram_from_samples,
            parse_prometheus,
            percentile_from_buckets,
        )

        try:
            series = parse_prometheus(await client.metrics())
            hist = histogram_from_samples(series, "repro_serve_request_seconds")
            if hist is None:
                return None
            bounds, cum, _sum, total = hist
            if not total:
                return None
            hmax = series.get("repro_serve_request_seconds_max")
            max_value = hmax["samples"][0][1] if hmax else None
            return float(percentile_from_buckets(bounds, cum, 99, max_value=max_value))
        except (ConnectionError, OSError, ValueError):
            return None

    async def cluster_metrics(self) -> str:
        """The cluster-wide ``METRICS`` payload.

        The router's own counters render first; then every reachable
        shard's exposition, relabelled with ``shard="i"`` and merged with
        de-duplicated ``# TYPE`` lines — one scrape, per-shard series.
        """
        from ..obs.exposition import merge_expositions, relabel_exposition, render_registry
        from ..obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.gauge("cluster.num_shards").set(len(self.shards))
        reg.counter("cluster.router_connections_total").inc(self.connections)
        reg.gauge("cluster.router_active_connections").set(self.active)
        reg.counter("cluster.router_forwarded_total").inc(self.forwarded)
        reg.counter("cluster.router_throttled_total").inc(self.throttled)
        reg.counter("cluster.router_shard_errors_total").inc(self.shard_errors)
        if self.rate_limiter is not None:
            reg.counter("cluster.router_rate_rejected_total").inc(self.rate_limiter.rejected)
        texts = [render_registry(reg)]
        up = 0
        for sid in sorted(self.shards):
            client = await self._control(sid)
            if client is None:
                continue
            try:
                text = await client.metrics()
            except (ConnectionError, OSError, ProtocolError):
                self._drop_control(sid)
                continue
            up += 1
            texts.append(relabel_exposition(text, {"shard": str(sid)}))
        up_reg = MetricsRegistry()
        up_reg.gauge("cluster.shards_up").set(up)
        texts.insert(1, render_registry(up_reg))
        return merge_expositions(texts)

    def _flight_json(self) -> bytes:
        import json

        from ..obs.flight import flight_payload

        payload = flight_payload("on-demand", detail="router FLIGHT")
        payload["router"] = self.router_stats()
        return (json.dumps(payload, default=str) + "\n").encode("ascii", errors="replace")

    # -- control-connection pool ----------------------------------------------

    async def _control(self, shard_id: int):
        client = self._ctrl.get(shard_id)
        if client is not None:
            return client
        from ..serve.loadgen import TCPCounterClient

        try:
            client = await TCPCounterClient.connect(*self.shard_address(shard_id))
        except (ConnectionError, OSError):
            return None
        self._ctrl[shard_id] = client
        return client

    def _drop_control(self, shard_id: int) -> None:
        client = self._ctrl.pop(shard_id, None)
        if client is not None:
            client._writer.close()
