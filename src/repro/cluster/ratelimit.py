"""Per-client token-bucket rate limiting for the cluster router.

One :class:`TokenBucket` per client key (the peer ``ip:port``): capacity
``burst`` tokens, refilled at ``rate`` tokens/second, each ``INC n``
costing ``n`` tokens.  A request that cannot be paid for is rejected up
front with ``ERR throttled`` — it never reaches a shard, so rate limiting
composes with (rather than competes against) the shard-side load-shedding
queue.

The clock is injectable (``clock=``) so tests are deterministic; buckets
for idle clients are evicted lazily once they are back at full capacity.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["TokenBucket", "ClientRateLimiter"]


class TokenBucket:
    """The classic leaky-integrator token bucket."""

    def __init__(self, rate: float, burst: float, *, clock: Callable[[], float]) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        if now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def allow(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means throttled."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def eta(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will be affordable (0 if now)."""
        self._refill()
        if self._tokens >= cost:
            return 0.0
        return (cost - self._tokens) / self.rate


class ClientRateLimiter:
    """A lazily-allocated bucket per client key.

    ``allow(key, cost)`` is the router's per-request gate.  ``rejected``
    counts throttled requests across all clients (mirrored into the
    router's METRICS).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] | None = None,
        max_clients: int = 4096,
    ) -> None:
        import time

        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self.max_clients = int(max_clients)
        self._buckets: dict[str, TokenBucket] = {}
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._buckets)

    def allow(self, key: str, cost: float = 1.0) -> bool:
        bucket = self._buckets.get(key)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                self._evict_full()
            bucket = self._buckets[key] = TokenBucket(self.rate, self.burst, clock=self._clock)
        ok = bucket.allow(cost)
        if not ok:
            self.rejected += 1
        return ok

    def eta(self, key: str, cost: float = 1.0) -> float:
        """Seconds until ``key`` can afford ``cost`` (splice-mode pacing)."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return 0.0
        return bucket.eta(cost)

    def forget(self, key: str) -> None:
        """Drop a client's bucket (connection closed)."""
        self._buckets.pop(key, None)

    def _evict_full(self) -> None:
        """Evict buckets that have refilled to capacity (idle clients)."""
        idle = [k for k, b in self._buckets.items() if b.tokens >= b.burst]
        for k in idle:
            del self._buckets[k]
        if not idle and self._buckets:
            # Every client is active; drop an arbitrary one rather than grow
            # without bound (it re-enters with a full bucket, which only
            # under-throttles briefly).
            self._buckets.pop(next(iter(self._buckets)))
