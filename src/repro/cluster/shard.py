"""Shard workers: one process, one network slice, one executor, one WAL.

A shard is a full :class:`~repro.serve.service.CountingService` (own
:class:`~repro.core.plan.PlanExecutor`, own batcher) configured to serve
one residue class of the cluster's value space: shard ``i`` of ``S``
dispenses ``i, i+S, i+2S, ...`` (``value_base=i``, ``value_stride=S``).
That is the paper's decomposition applied one level up — the cluster
behaves like a width-``S`` balancer whose output wires are whole worker
processes, and exactly-once for the cluster reduces to exactly-once per
shard, which each shard re-verifies per batch as always.

Durability: every batch appends to the shard's :class:`TokenWAL` *before*
any waiter is acked (the service ``commit`` hook).  A killed shard is
restarted by the cluster supervisor with :func:`make_shard_service`, which
replays the log and :meth:`~repro.serve.service.CountingService.restore`\\ s
the token count — so a value acked before the kill is never re-issued.

:class:`ShardWorker` is the parent-side handle: it spawns the child with
the ``spawn`` multiprocessing context (no inherited event loops), waits
for the child's ready message (bound port + replayed token count), and can
``kill()`` it dead for chaos testing.  After the first start the bound
port is pinned into the spec so a restart listens on the same address and
the router's connections simply reconnect.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import signal
from dataclasses import dataclass

from .wal import TokenWAL, WALReplay

__all__ = ["ShardSpec", "ShardWorker", "make_shard_service", "shard_main"]


@dataclass
class ShardSpec:
    """Everything a shard process needs, in picklable primitives."""

    shard_id: int
    num_shards: int
    factors: tuple[int, ...] = (2, 3)
    construction: str = "K"
    wal_path: str = ""
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral on first start; pinned after
    max_batch: int = 64
    max_delay: float = 0.001
    queue_limit: int = 1024
    fsync: bool = True
    adaptive: bool = False
    obs: bool = False

    def build_network(self):
        from ..networks import counting_network, k_network, l_network

        builders = {"K": k_network, "L": l_network, "C": counting_network}
        return builders[self.construction](list(self.factors))


def make_shard_service(spec: ShardSpec):
    """Build the shard's durable service: replay the WAL, wire the commit.

    Returns ``(service, wal, replay)``; the service is restored to the
    replayed token count and every future batch appends before acking.
    """
    net = spec.build_network()
    wal = TokenWAL.open(spec.wal_path, fsync=spec.fsync)
    replay: WALReplay = wal.last_replay
    from ..serve.service import CountingService

    service = CountingService(
        net,
        max_batch=spec.max_batch,
        max_delay=spec.max_delay,
        queue_limit=spec.queue_limit,
        value_base=spec.shard_id,
        value_stride=spec.num_shards,
        commit=wal.append,
    )
    if replay.total:
        service.restore(replay.total)
        service._batch_seq = replay.seq
    return service, wal, replay


def shard_main(spec: ShardSpec, ready) -> None:
    """Child-process entry point: serve one shard until terminated.

    ``ready`` is the parent's pipe end; one dict is sent once the listening
    socket is bound (or an ``error`` dict if startup fails).
    """
    if spec.obs:
        from .. import obs

        obs.enable()
    try:
        service, wal, replay = make_shard_service(spec)
    except Exception as exc:  # noqa: BLE001 — report startup failure to parent
        ready.send({"shard_id": spec.shard_id, "error": f"{type(exc).__name__}: {exc}"})
        return

    from ..serve.server import CountingServer

    server = CountingServer(service, host=spec.host, port=spec.port)
    stop = asyncio.Event()

    async def run() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await server.start()
        ready.send(
            {
                "shard_id": spec.shard_id,
                "pid": os.getpid(),
                "port": server.address[1],
                "recovered_total": replay.total,
                "recovered_records": replay.records,
                "torn_bytes": replay.torn_bytes,
            }
        )
        tuner = None
        if spec.adaptive:
            from .tuner import AdaptiveBatchTuner

            tuner = AdaptiveBatchTuner(service._batcher)
            tuner.start()
        try:
            await stop.wait()
        finally:
            if tuner is not None:
                await tuner.stop()
            await server.stop()
            wal.close()

    asyncio.run(run())


class ShardWorker:
    """Parent-side handle for one shard process."""

    def __init__(self, spec: ShardSpec, *, start_timeout: float = 60.0) -> None:
        self.spec = spec
        self.start_timeout = float(start_timeout)
        self.process: multiprocessing.process.BaseProcess | None = None
        self.port: int | None = spec.port or None
        self.restarts = -1  # first start() brings this to 0
        self.last_ready: dict | None = None

    @property
    def shard_id(self) -> int:
        return self.spec.shard_id

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def address(self) -> tuple[str, int]:
        if self.port is None:
            raise RuntimeError(f"shard {self.shard_id} was never started")
        return self.spec.host, self.port

    def start(self) -> dict:
        """Spawn the shard and block until its socket is bound (or fail)."""
        if self.alive:
            raise RuntimeError(f"shard {self.shard_id} is already running")
        ctx = multiprocessing.get_context("spawn")
        parent_end, child_end = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=shard_main,
            args=(self.spec, child_end),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_end.close()
        if not parent_end.poll(self.start_timeout):
            self.process.kill()
            raise RuntimeError(f"shard {self.shard_id} did not come up in {self.start_timeout}s")
        info = parent_end.recv()
        parent_end.close()
        if "error" in info:
            self.process.join(timeout=5)
            raise RuntimeError(f"shard {self.shard_id} failed to start: {info['error']}")
        # Pin the bound port so a restart reuses the address the router knows.
        self.port = int(info["port"])
        self.spec = dataclasses.replace(self.spec, port=self.port)
        self.restarts += 1
        self.last_ready = info
        return info

    def kill(self) -> None:
        """SIGKILL — the chaos path: no cleanup, no WAL close, no flushing."""
        if self.process is not None:
            self.process.kill()
            self.process.join(timeout=10)

    def terminate(self, timeout: float = 10.0) -> None:
        """Graceful stop (SIGTERM, drains the batcher and closes the WAL)."""
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover — stuck child fallback
            self.process.kill()
            self.process.join(timeout=5)

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "pid": self.process.pid if self.process is not None else None,
            "port": self.port,
            "up": self.alive,
            "restarts": max(self.restarts, 0),
            "wal_path": self.spec.wal_path,
            "recovered_total": (self.last_ready or {}).get("recovered_total", 0),
        }
