"""Consistent hashing: stable client → shard assignment.

The router pins every client to one shard for the lifetime of the cluster
(a client's values all come from one residue class, and its requests never
fan out).  A :class:`HashRing` with virtual nodes gives the two properties
the tests pin down:

* **balance** — with ``replicas`` vnodes per shard the max/min load ratio
  over many clients stays bounded (the classic ``O(log n)`` spread);
* **stability** — adding one shard to an ``n``-shard ring remaps only about
  ``1/(n+1)`` of the keys; removing it restores the previous assignment
  exactly.

Hashing is BLAKE2b (stable across processes and Python runs — ``hash()``
is salted per process and useless here), truncated to 64 bits.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["stable_hash", "HashRing"]


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    return int.from_bytes(hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """Map string keys to member ids with consistent hashing.

    ``members`` are opaque ids (shard ids here); each contributes
    ``replicas`` points on the 64-bit ring.  ``node_for(key)`` walks
    clockwise from the key's hash to the first point.
    """

    def __init__(self, members=(), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: list[tuple[int, int | str]] = []
        self._hashes: list[int] = []
        self._members: set = set()
        for m in members:
            self.add(m)

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> list:
        return sorted(self._members)

    def add(self, member) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for r in range(self.replicas):
            h = stable_hash(f"{member}#{r}")
            idx = bisect.bisect_left(self._hashes, h)
            self._hashes.insert(idx, h)
            self._points.insert(idx, (h, member))

    def remove(self, member) -> None:
        if member not in self._members:
            raise KeyError(member)
        self._members.discard(member)
        keep = [(h, m) for h, m in self._points if m != member]
        self._points = keep
        self._hashes = [h for h, _ in keep]

    def node_for(self, key: str):
        """The member owning ``key`` (clockwise successor on the ring)."""
        if not self._points:
            raise KeyError("hash ring is empty")
        idx = bisect.bisect_right(self._hashes, stable_hash(key))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]

    def distribution(self, keys) -> dict:
        """Member → key count over ``keys`` (balance diagnostics/tests)."""
        counts = {m: 0 for m in self._members}
        for k in keys:
            counts[self.node_for(k)] += 1
        return counts
