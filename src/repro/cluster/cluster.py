"""Cluster assembly and supervision: shards + router + restart loop.

:class:`Cluster` owns the whole topology described in
:mod:`repro.cluster`: it spawns one :class:`~repro.cluster.shard.ShardWorker`
per residue class, fronts them with a :class:`~repro.cluster.router.ClusterRouter`,
and runs a supervisor task that restarts any shard found dead — each
restart replays that shard's WAL before the socket reopens, so a
``kill -9`` mid-load costs availability (a few rejected/risked requests)
but never duplicates a value.

A small JSON state file (``<wal_dir>/cluster.json``) records the router
address and per-shard pids/ports so ``repro cluster status``/``kill-shard``
in *another* process can find the running cluster.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field

from .ratelimit import ClientRateLimiter
from .router import ClusterRouter
from .shard import ShardSpec, ShardWorker

__all__ = ["ClusterConfig", "Cluster", "STATE_FILENAME"]

STATE_FILENAME = "cluster.json"


@dataclass
class ClusterConfig:
    """The whole cluster in picklable primitives (one per ``repro cluster start``)."""

    shards: int = 2
    wal_dir: str = ""
    factors: tuple[int, ...] = (2, 3)
    construction: str = "K"
    host: str = "127.0.0.1"
    router_port: int = 0
    mode: str = "line"
    max_batch: int = 64
    max_delay: float = 0.001
    queue_limit: int = 1024
    fsync: bool = True
    adaptive: bool = False
    obs: bool = False
    rate: float | None = None  # per-client tokens/second (None = no limiting)
    burst: float | None = None  # bucket capacity (defaults to 2×rate)
    replicas: int = 64
    supervise: bool = True
    poll_interval: float = 0.2
    start_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not self.wal_dir:
            raise ValueError("wal_dir is required (one WAL file per shard lives there)")

    def shard_spec(self, shard_id: int) -> ShardSpec:
        return ShardSpec(
            shard_id=shard_id,
            num_shards=self.shards,
            factors=tuple(self.factors),
            construction=self.construction,
            wal_path=os.path.join(self.wal_dir, f"shard-{shard_id}.wal"),
            host=self.host,
            max_batch=self.max_batch,
            max_delay=self.max_delay,
            queue_limit=self.queue_limit,
            fsync=self.fsync,
            adaptive=self.adaptive,
            obs=self.obs,
        )

    @property
    def state_path(self) -> str:
        return os.path.join(self.wal_dir, STATE_FILENAME)


class Cluster:
    """A running sharded counting cluster (shards, router, supervisor)."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.workers = [
            ShardWorker(config.shard_spec(i), start_timeout=config.start_timeout)
            for i in range(config.shards)
        ]
        self.addresses: dict[int, tuple[str, int]] = {}
        self.router: ClusterRouter | None = None
        self.rate_limiter: ClientRateLimiter | None = None
        self.restarts = 0
        self._supervisor: asyncio.Task | None = None
        self._restarting: set[int] = set()
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self.router is None:
            raise RuntimeError("cluster is not started")
        return self.router.address

    def worker_info(self) -> dict[int, dict]:
        return {w.shard_id: w.as_dict() for w in self.workers}

    @property
    def settled(self) -> bool:
        """Every shard is up and no restart is in flight.

        ``worker.alive`` flips True early in a restart (the process exists
        before its socket is bound), so waiters must check this, not
        per-worker aliveness, to know a chaos kill has been fully healed.
        """
        return all(w.alive for w in self.workers) and not self._restarting

    async def start(self) -> None:
        os.makedirs(self.config.wal_dir, exist_ok=True)
        for worker in self.workers:
            await asyncio.to_thread(worker.start)
            self.addresses[worker.shard_id] = worker.address
        if self.config.rate is not None:
            burst = self.config.burst if self.config.burst is not None else 2 * self.config.rate
            self.rate_limiter = ClientRateLimiter(self.config.rate, burst)
        self.router = ClusterRouter(
            self.addresses,
            host=self.config.host,
            port=self.config.router_port,
            mode=self.config.mode,
            rate_limiter=self.rate_limiter,
            replicas=self.config.replicas,
            worker_info=self.worker_info,
        )
        await self.router.start()
        if self.config.supervise:
            self._supervisor = asyncio.get_running_loop().create_task(self._supervise())
        self._started = True
        self.write_state()

    async def stop(self) -> None:
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        if self.router is not None:
            await self.router.stop()
        for worker in self.workers:
            await asyncio.to_thread(worker.terminate)
        self._started = False
        try:
            os.unlink(self.config.state_path)
        except OSError:
            pass

    async def __aenter__(self) -> "Cluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- supervision ----------------------------------------------------------

    async def _supervise(self) -> None:
        """Restart dead shards forever (the chaos-recovery path)."""
        while True:
            await asyncio.sleep(self.config.poll_interval)
            for worker in self.workers:
                if not worker.alive and worker.shard_id not in self._restarting:
                    self._restarting.add(worker.shard_id)
                    try:
                        await self.restart_shard(worker.shard_id)
                    except Exception:  # noqa: BLE001 — keep supervising; retry next tick
                        pass
                    finally:
                        self._restarting.discard(worker.shard_id)

    async def restart_shard(self, shard_id: int) -> dict:
        """Bring one (dead) shard back: WAL replay + same pinned port."""
        worker = self.workers[shard_id]
        if worker.alive:
            raise RuntimeError(f"shard {shard_id} is alive; kill it first")
        info = await asyncio.to_thread(worker.start)
        self.addresses[worker.shard_id] = worker.address
        self.restarts += 1
        self.write_state()
        return info

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one shard (chaos); the supervisor will restart it."""
        self.workers[shard_id].kill()

    # -- state ----------------------------------------------------------------

    def status(self) -> dict:
        return {
            "started": self._started,
            "router": {
                "host": self.config.host,
                "port": self.router.address[1] if self.router is not None else None,
                "mode": self.config.mode,
            },
            "num_shards": self.config.shards,
            "restarts": self.restarts,
            "wal_dir": self.config.wal_dir,
            "shards": [w.as_dict() for w in self.workers],
        }

    def write_state(self) -> None:
        """Atomically publish the state file other processes read."""
        state = self.status()
        state["pid"] = os.getpid()
        state["written_at"] = time.time()
        tmp = self.config.state_path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump(state, fh, indent=2)
        os.replace(tmp, self.config.state_path)

    @staticmethod
    def read_state(wal_dir: str) -> dict:
        """Read another process's state file (``repro cluster status``)."""
        with open(os.path.join(wal_dir, STATE_FILENAME), encoding="ascii") as fh:
            return json.load(fh)
