"""repro.cluster — a sharded, durable counting cluster.

The paper's move is always the same: split a hot counter into ``w``
balancers so contention drops while the step property survives.  This
package applies the move one level up, across *processes*: ``S`` shard
workers each run a full :class:`~repro.serve.service.CountingService`
(their own network + :class:`~repro.core.plan.PlanExecutor`) over one
residue class of the value space — shard ``i`` dispenses
``i, i+S, i+2S, ...`` — and a consistent-hash router pins each client to
one shard while speaking the exact single-server line protocol.

Durability is per shard: every batch is appended to a checksummed
write-ahead token log *before* any client is acked, so a ``kill -9`` and
restart replays the log and resumes exactly where the acked prefix ended
— no value is ever dispensed twice (the exactly-once property, now
crash-tolerant).

Layout::

    wal.py        TokenWAL — fixed 32-byte CRC records, torn-tail repair
    hashing.py    stable_hash + HashRing (balance/stability properties)
    ratelimit.py  TokenBucket / ClientRateLimiter (router admission)
    tuner.py      recommend() + AdaptiveBatchTuner (live batch knobs)
    shard.py      ShardSpec / shard_main / ShardWorker (one process each)
    router.py     ClusterRouter — line + splice forwarding, aggregation
    cluster.py    ClusterConfig / Cluster — assembly, supervision, state
"""

from .cluster import Cluster, ClusterConfig
from .hashing import HashRing, stable_hash
from .ratelimit import ClientRateLimiter, TokenBucket
from .router import ClusterRouter
from .shard import ShardSpec, ShardWorker, make_shard_service, shard_main
from .tuner import AdaptiveBatchTuner, TunerConfig, TunerSample, recommend
from .wal import TokenWAL, WALCorruptionError, WALError, WALRecord, WALReplay, replay

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterRouter",
    "HashRing",
    "stable_hash",
    "ClientRateLimiter",
    "TokenBucket",
    "AdaptiveBatchTuner",
    "TunerConfig",
    "TunerSample",
    "recommend",
    "ShardSpec",
    "ShardWorker",
    "make_shard_service",
    "shard_main",
    "TokenWAL",
    "WALError",
    "WALCorruptionError",
    "WALRecord",
    "WALReplay",
    "replay",
]
