"""Write-ahead token log: the durability half of a shard's exactly-once story.

A shard's entire issuance state is one integer — the token count ``T``
(:class:`~repro.serve.service.CountingService` re-derives the per-wire
output counts from ``T`` via the quiescent-state identity).  So the log is
deliberately tiny: one fixed-size checksummed record per *batch*, appended
and fsynced before any waiter of that batch is acked (the service's
``commit`` hook).  Recovery is a replay to the last valid record's total;
a killed-and-restarted shard resumes issuing at ``T_replayed >= T_acked``
and therefore never re-dispenses a value a client may already hold.

Record layout (little-endian, 32 bytes)::

    magic   2s   b"WL"
    length  u16  payload bytes (24)
    crc32   u32  CRC-32 of the payload
    seq     u64  batch sequence number (strictly increasing)
    total   u64  tokens issued after this batch
    time    f64  unix timestamp (informational)

Two failure modes are kept distinct on replay:

* a **torn tail** — the process died mid-append, leaving a truncated final
  record.  This is the expected crash artifact; replay stops at the last
  complete record and reports the dangling byte count (``torn_bytes``),
  which :meth:`TokenWAL.open` truncates away before appending again.
* **corruption** — a complete record whose checksum, magic, or monotonicity
  check fails.  That is never produced by a crash mid-append and means the
  log can no longer be trusted; replay raises :class:`WALCorruptionError`
  instead of guessing.

Appends are *fsync-batched* by construction: the service calls ``append``
once per vectorized batch (tens of coalesced requests), so one ``fsync``
covers the whole group — group commit without extra machinery.  ``fsync=
False`` drops to flush-only durability (survives process death, not host
death) for benchmarks that want the logging path without the disk wait.
"""

from __future__ import annotations

import os
import pathlib
import struct
import time
import zlib
from dataclasses import dataclass

__all__ = ["WALError", "WALCorruptionError", "WALRecord", "WALReplay", "TokenWAL"]

_MAGIC = b"WL"
_HEADER = struct.Struct("<2sHI")  # magic, payload length, crc32
_PAYLOAD = struct.Struct("<QQd")  # seq, total, timestamp
RECORD_BYTES = _HEADER.size + _PAYLOAD.size


class WALError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WALCorruptionError(WALError):
    """A complete record failed its checksum or consistency checks."""


@dataclass(frozen=True)
class WALRecord:
    """One durable batch: after batch ``seq`` the shard had issued ``total``."""

    seq: int
    total: int
    timestamp: float

    def encode(self) -> bytes:
        payload = _PAYLOAD.pack(self.seq, self.total, self.timestamp)
        return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class WALReplay:
    """The outcome of reading a log back: records seen and where they end."""

    records: int
    seq: int
    total: int
    torn_bytes: int
    valid_bytes: int

    @property
    def clean(self) -> bool:
        """True when the log ended exactly on a record boundary."""
        return self.torn_bytes == 0


def _decode_at(buf: bytes, off: int) -> WALRecord | None:
    """Decode the record at ``off``; ``None`` means a torn (truncated) tail.

    Raises :class:`WALCorruptionError` for a complete-but-invalid record.
    """
    if off + _HEADER.size > len(buf):
        return None
    magic, length, crc = _HEADER.unpack_from(buf, off)
    if magic != _MAGIC:
        raise WALCorruptionError(f"bad record magic {magic!r} at byte {off}")
    if length != _PAYLOAD.size:
        raise WALCorruptionError(f"bad payload length {length} at byte {off}")
    start = off + _HEADER.size
    if start + length > len(buf):
        return None
    payload = buf[start : start + length]
    if zlib.crc32(payload) != crc:
        raise WALCorruptionError(f"checksum mismatch at byte {off}")
    seq, total, ts = _PAYLOAD.unpack(payload)
    return WALRecord(seq, total, ts)


def replay(path) -> WALReplay:
    """Read ``path`` and return the recovered ``(seq, total)`` state.

    A missing or empty file replays to zero.  A torn tail is tolerated and
    reported; mid-record corruption raises :class:`WALCorruptionError`.
    """
    p = pathlib.Path(path)
    try:
        buf = p.read_bytes()
    except FileNotFoundError:
        return WALReplay(0, 0, 0, 0, 0)
    records = seq = total = 0
    off = 0
    while off < len(buf):
        rec = _decode_at(buf, off)
        if rec is None:  # torn tail: the crash artifact, not corruption
            return WALReplay(records, seq, total, len(buf) - off, off)
        if rec.seq <= seq and records:
            raise WALCorruptionError(
                f"non-monotonic seq {rec.seq} after {seq} at byte {off}"
            )
        if rec.total < total:
            raise WALCorruptionError(
                f"token count went backwards ({total} -> {rec.total}) at byte {off}"
            )
        records += 1
        seq, total = rec.seq, rec.total
        off += RECORD_BYTES
    return WALReplay(records, seq, total, 0, off)


class TokenWAL:
    """Appendable write-ahead token log for one shard.

    Use :meth:`open` to recover-then-append: it replays the existing file,
    truncates any torn tail, and positions the writer after the last valid
    record.  :attr:`last_replay` holds the recovery outcome.
    """

    def __init__(self, path, *, fsync: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.fsync = bool(fsync)
        self.appended = 0
        self.synced = 0
        self.last_replay: WALReplay | None = None
        self._fd: int | None = None
        self._seq = 0
        self._total = 0

    @classmethod
    def open(cls, path, *, fsync: bool = True) -> "TokenWAL":
        wal = cls(path, fsync=fsync)
        rep = replay(wal.path)
        wal.last_replay = rep
        wal._seq, wal._total = rep.seq, rep.total
        wal.path.parent.mkdir(parents=True, exist_ok=True)
        wal._fd = os.open(wal.path, os.O_WRONLY | os.O_CREAT, 0o644)
        if rep.torn_bytes:
            os.ftruncate(wal._fd, rep.valid_bytes)
        os.lseek(wal._fd, rep.valid_bytes, os.SEEK_SET)
        return wal

    # -- writer ---------------------------------------------------------------

    @property
    def total(self) -> int:
        """Tokens recorded durable so far (replayed + appended)."""
        return self._total

    @property
    def seq(self) -> int:
        return self._seq

    def append(self, seq: int, total: int, *, timestamp: float | None = None) -> WALRecord:
        """Append one record and (by default) fsync before returning.

        This is the append-before-ack point: the caller must not complete
        client requests for the batch until this returns.
        """
        if self._fd is None:
            raise WALError("log is not open for appending (use TokenWAL.open)")
        if seq <= self._seq:
            raise WALError(f"seq must increase: {seq} after {self._seq}")
        if total < self._total:
            raise WALError(f"total must not decrease: {total} after {self._total}")
        rec = WALRecord(int(seq), int(total), time.time() if timestamp is None else timestamp)
        os.write(self._fd, rec.encode())
        if self.fsync:
            os.fsync(self._fd)
            self.synced += 1
        self.appended += 1
        self._seq, self._total = rec.seq, rec.total
        return rec

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "TokenWAL":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "fsync": self.fsync,
            "appended": self.appended,
            "synced": self.synced,
            "seq": self._seq,
            "total": self._total,
        }


# Module-level alias so ``TokenWAL.replay`` reads naturally at call sites
# that never open a writer (audits, tests).
TokenWAL.replay = staticmethod(replay)
