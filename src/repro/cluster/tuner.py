"""Adaptive batching: tune a shard's ``max_batch``/``max_delay`` from load.

The :class:`~repro.serve.batching.Batcher` reads its ``max_batch`` and
``max_delay`` attributes fresh on every batch, so they are live-tunable.
:func:`recommend` is the pure policy — a deterministic function from one
:class:`TunerSample` (queue depth, batch-size saturation, observed queue
wait) to the next knob settings — and :class:`AdaptiveBatchTuner` is the
thin async wrapper a :class:`~repro.cluster.shard.ShardWorker` runs: it
samples the batcher (and, when observability is on, the
``serve.queue_wait_seconds`` histogram from :mod:`repro.obs`) on a fixed
interval and applies the recommendation.

Policy (AIMD-shaped, clamped to ``[floor, cap]``):

* **queue pressure** (depth above half the limit) — double ``max_batch``
  and halve ``max_delay``: drain fast, stop lingering for company that is
  already queued;
* **batch saturation** (mean batch size near ``max_batch``) — double
  ``max_batch``: the coalescing window is clipping;
* **underload** (small batches, near-empty queue) — decay both knobs
  toward their configured baseline, and when requests wait much less than
  ``max_delay`` shrink the linger toward the observed wait: an idle shard
  should not tax every request with the full linger.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ..obs import runtime as _obs

__all__ = ["TunerSample", "TunerConfig", "recommend", "AdaptiveBatchTuner"]


@dataclass(frozen=True)
class TunerSample:
    """One observation interval, in batcher units."""

    queue_depth: int
    queue_limit: int
    max_batch: int
    max_delay: float
    batches: int  # batches completed this interval
    requests: int  # requests completed this interval
    queue_wait_p50: float | None = None  # seconds, from obs when available

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def pressure(self) -> float:
        return self.queue_depth / self.queue_limit if self.queue_limit else 0.0


@dataclass(frozen=True)
class TunerConfig:
    """Baselines (the configured knobs) and hard bounds for the tuner."""

    base_batch: int = 64
    base_delay: float = 0.001
    max_batch_cap: int = 4096
    min_delay: float = 0.0001

    @classmethod
    def for_batcher(cls, batcher, **overrides) -> "TunerConfig":
        return cls(
            base_batch=batcher.max_batch, base_delay=batcher.max_delay, **overrides
        )


def recommend(sample: TunerSample, config: TunerConfig) -> tuple[int, float]:
    """The next ``(max_batch, max_delay)`` for one observed interval."""
    batch, delay = sample.max_batch, sample.max_delay
    if sample.pressure > 0.5:
        batch = min(batch * 2, config.max_batch_cap)
        delay = max(delay / 2, config.min_delay)
    elif sample.batches and sample.mean_batch >= 0.9 * batch:
        batch = min(batch * 2, config.max_batch_cap)
    elif sample.batches and sample.mean_batch <= 0.25 * batch and sample.pressure < 0.05:
        # Underloaded: relax toward the configured baseline (one halving /
        # one 25% step per interval keeps the decay stable).
        if batch > config.base_batch:
            batch = max(batch // 2, config.base_batch)
        if delay < config.base_delay:
            delay = min(delay * 1.25, config.base_delay)
        if sample.queue_wait_p50 is not None and sample.queue_wait_p50 < delay / 4:
            delay = max(sample.queue_wait_p50 * 2, config.min_delay)
    return int(batch), float(delay)


class AdaptiveBatchTuner:
    """Periodically apply :func:`recommend` to a live batcher."""

    def __init__(self, batcher, *, interval: float = 0.25, config: TunerConfig | None = None):
        self.batcher = batcher
        self.interval = float(interval)
        self.config = config if config is not None else TunerConfig.for_batcher(batcher)
        self.adjustments = 0
        self._task: asyncio.Task | None = None
        self._last_batches = batcher.stats.batches
        self._last_requests = batcher.stats.completed

    def sample(self) -> TunerSample:
        stats = self.batcher.stats
        batches = stats.batches - self._last_batches
        requests = stats.completed - self._last_requests
        self._last_batches = stats.batches
        self._last_requests = stats.completed
        return TunerSample(
            queue_depth=self.batcher.queue_depth,
            queue_limit=self.batcher.queue_limit,
            max_batch=self.batcher.max_batch,
            max_delay=self.batcher.max_delay,
            batches=batches,
            requests=requests,
            queue_wait_p50=self._observed_wait_p50(),
        )

    def step(self) -> bool:
        """One sample → recommend → apply cycle; True if a knob moved."""
        sample = self.sample()
        batch, delay = recommend(sample, self.config)
        changed = batch != self.batcher.max_batch or delay != self.batcher.max_delay
        if changed:
            self.batcher.max_batch = batch
            self.batcher.max_delay = delay
            self.adjustments += 1
            if _obs.enabled:
                from ..obs.metrics import default_registry

                reg = default_registry()
                reg.counter("cluster.tuner_adjustments").inc()
                reg.gauge("cluster.tuned_max_batch").set(batch)
                reg.gauge("cluster.tuned_max_delay_seconds").set(delay)
        return changed

    async def run(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            self.step()

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self.run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def _observed_wait_p50(self) -> float | None:
        """Median queue wait from the obs histogram, if obs is recording."""
        if not _obs.enabled:
            return None
        from ..obs.metrics import default_registry

        hist = default_registry().get("serve.queue_wait_seconds")
        if hist is None or getattr(hist, "total", 0) == 0:
            return None
        try:
            return float(hist.percentile(50))
        except (ValueError, ZeroDivisionError):
            return None
