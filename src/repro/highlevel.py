"""High-level convenience API: sort batches, make counters.

These wrap the planner + constructions + simulators into the two calls a
downstream user typically wants:

* :func:`oblivious_sort` — sort a batch of rows with a data-independent
  comparison schedule (any width; pads to the nearest factorable width);
* :func:`make_counter` — a concurrent Fetch&Increment counter of a given
  width under a balancer budget, optionally linearizable.
"""

from __future__ import annotations

import numpy as np

from .analysis.planner import plan_network
from .core.network import Network
from .sim.concurrent import ThreadedCounter
from .sim.linearized import LinearizedThreadedCounter
from .sim.sort_sim import evaluate_comparators

__all__ = ["oblivious_sort", "make_counter"]


def oblivious_sort(
    values: np.ndarray,
    max_comparator: int | None = None,
    network: Network | None = None,
    ascending: bool = True,
) -> np.ndarray:
    """Sort each row of ``values`` with a comparator network.

    The comparison schedule is *oblivious*: it depends only on the row
    width, never on the data — the property that makes these networks
    suitable for hardware pipelines and timing-side-channel-free code.

    ``max_comparator`` bounds the widest comparator used (default: no
    bound, which picks the shallowest network).  Widths that cannot be
    factored within the bound are handled by padding with sentinels.
    A pre-built ``network`` (width >= row width) can be supplied to skip
    planning.
    """
    values = np.asarray(values)
    single = values.ndim == 1
    if single:
        values = values[None, :]
    if values.ndim != 2:
        raise ValueError(f"expected a (B, w) batch, got shape {values.shape}")
    w = values.shape[1]
    if w == 0:
        return values[0] if single else values
    if w == 1:
        return values[0].copy() if single else values.copy()

    if network is None:
        budget = max_comparator if max_comparator is not None else w
        if budget < 2:
            raise ValueError("max_comparator must be >= 2")
        # K needs pairwise-product balancers (>= 4); very narrow budgets
        # are exactly what the L family provides.
        family = "K" if budget >= 4 or budget >= w else "L"
        network = plan_network(w, budget, family).build()
    if network.width < w:
        raise ValueError(f"network width {network.width} < row width {w}")

    if network.width > w:
        # Pad with the dtype minimum: in descending evaluation the
        # sentinels sink to the tail and are stripped afterwards.
        if np.issubdtype(values.dtype, np.integer):
            sentinel = np.iinfo(values.dtype).min
        elif np.issubdtype(values.dtype, np.floating):
            sentinel = -np.inf
        else:
            raise ValueError(f"cannot pad dtype {values.dtype}; pass a network of exact width")
        pad = np.full((values.shape[0], network.width - w), sentinel, dtype=values.dtype)
        padded = np.concatenate([values, pad], axis=1)
    else:
        padded = values

    out = evaluate_comparators(network, padded)[:, :w]
    if ascending:
        out = out[:, ::-1]
    return out[0].copy() if single else out.copy()


def make_counter(
    width: int,
    max_balancer: int | None = None,
    family: str = "L",
    linearizable: bool = False,
) -> ThreadedCounter:
    """A ready-to-use concurrent Fetch&Increment counter.

    ``width`` controls the contention spread (more wires, less contention
    per output counter); ``max_balancer`` bounds the widest atomic
    primitive (defaults to no bound).  ``linearizable=True`` adds the
    waiting discipline (values return in real-time order, at the cost of
    wait-freedom — see paper §6 and `docs/paper_map.md`).
    """
    budget = max_balancer if max_balancer is not None else width
    net = plan_network(width, budget, family).build()
    return LinearizedThreadedCounter(net) if linearizable else ThreadedCounter(net)
