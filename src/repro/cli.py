"""Command-line interface: ``python -m repro <command>``.

Commands
--------
build       build a network and print its stats (and optionally a diagram)
verify      search for counting/sorting violations
family      print the factorization family table for a width
compare     print the related-work comparison table
throughput  run the discrete-event contention model over a family
export      emit a network as Graphviz DOT or layered JSON
smooth      measure a network's observed smoothing constant
linearize   search for a non-linearizable execution (paper §6)
audit       per-layer profile and critical path of a network
profile     observability: run a workload, print hot-spot tables, emit
            BENCH_profile.json + a JSON-lines trace
serve       run the TCP counting service (repro.serve)
cluster     sharded, WAL-durable counting cluster (repro.cluster):
            ``start`` runs shards + router in the foreground, ``status``
            reads the state file (and probes the router), ``kill-shard``
            SIGKILLs one shard so the supervisor's WAL replay can be
            watched live
loadgen     drive a counting service with open/closed-loop load and emit
            BENCH_serve.json (``--procs`` fans the client side out over
            OS processes for cluster targets)
fuzz        fault injection (repro.faults): ``mutate`` checks that every
            verifier catches every fault class (kill matrix), ``inputs``
            fuzzes the step property with corpus + shrinking, ``chaos``
            stress-tests the counting service's exactly-once guarantee;
            all three emit BENCH_fuzz.json
cache       persistent build/plan cache (.repro_cache): ``stats`` prints
            entry counts, bytes, hit/miss counters and a per-variant
            breakdown, ``clear`` wipes it
search      discover depth-optimal base networks (repro.search): ``beam``
            runs the dependency-free seeded beam search, ``sat`` the CNF
            placement encoding with CEGAR refinement (needs the optional
            pysat 'search' extra), ``show`` prints the validated
            best-known registry; beam/sat emit BENCH_search.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis import build_family, comparison_table, format_table, network_stats, pareto_frontier
from .baselines import bitonic_network, brick_network, bubble_network, odd_even_network, periodic_network
from .networks import counting_network, k_network, l_network, r_network
from .sim import ContentionSimulator
from .verify import find_counting_violation, find_sorting_violation
from .viz import render_network

__all__ = ["main"]

_BUILDERS = {
    "K": lambda factors: k_network(factors),
    "L": lambda factors: l_network(factors),
    "C": lambda factors: counting_network(factors),
    "R": lambda factors: r_network(*factors),
    "bitonic": lambda factors: bitonic_network(factors[0]),
    "periodic": lambda factors: periodic_network(factors[0]),
    "oddeven": lambda factors: odd_even_network(factors[0]),
    "bubble": lambda factors: bubble_network(factors[0]),
    "brick": lambda factors: brick_network(factors[0]),
}


def _check_factors(factors: list[int]) -> list[int]:
    """Reject degenerate factors: every width/factor must be >= 2.

    Factors of 0 or 1 (or negative) would "build" trivial or broken
    networks — e.g. ``k_network([1, 6])`` is a width-6 single balancer and
    ``bitonic_network(0)`` is empty — which silently invalidates the
    depth/size tables every other subcommand prints.
    """
    bad = [f for f in factors if f < 2]
    if bad:
        raise SystemExit(
            f"error: factors must be integers >= 2, got {', '.join(map(str, bad))} "
            f"(widths are products of balancer widths, and a balancer needs >= 2 wires)"
        )
    return factors


#: Families whose construction supports ``variant="searched"``.
_VARIANT_FAMILIES = ("K", "L", "C")


def _make_network(family: str, factors: list[int], variant: str = "stock"):
    factors = _check_factors(factors)
    if variant != "stock":
        if family == "K":
            return k_network(factors, variant=variant)
        if family == "L":
            return l_network(factors, variant=variant)
        if family == "C":
            return counting_network(factors, searched=(variant == "searched"))
        raise SystemExit(
            f"error: --variant {variant} is only available for "
            f"{', '.join(_VARIANT_FAMILIES)} (got {family})"
        )
    return _BUILDERS[family](factors)


def _add_variant_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--variant", choices=["stock", "searched"], default="stock",
        help="searched substitutes best-known registry networks into K/L/C "
        "wherever they are strictly shallower (repro.search)",
    )


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend", choices=["auto", "int64", "bitsliced"], default="auto",
        help="0-1 evaluation engine: bitsliced packs 64 inputs per uint64 "
        "word (auto picks it); int64 keeps the legacy lane-per-value path. "
        "Verdicts are byte-identical either way.",
    )


def _build(args: argparse.Namespace):
    net = _make_network(args.family, args.factors, args.variant)
    s = network_stats(net)
    print(format_table([s.as_dict()]))
    if args.diagram:
        print()
        print(render_network(net))
    return 0


def _verify(args: argparse.Namespace) -> int:
    from .verify import minimize_violation

    net = _make_network(args.family, args.factors, args.variant)
    backend = getattr(args, "backend", "auto")
    cv = find_counting_violation(
        net, rng=np.random.default_rng(args.seed), backend=backend
    )
    sv = find_sorting_violation(net, backend=backend)
    print(f"{net.name}: width={net.width} depth={net.depth} backend={backend}")
    print(f"  sorting: {'OK (0-1 principle)' if sv is None else f'VIOLATION: {sv}'}")
    if cv is None:
        print("  counting: no violation found")
    else:
        small = minimize_violation(net, cv)
        print(f"  counting: VIOLATION: {cv}")
        print(f"  minimized witness: input {small.input_counts.tolist()} "
              f"-> output {small.output_counts.tolist()}")
    return 0 if (cv is None and sv is None) else 1


def _family(args: argparse.Namespace) -> int:
    entries = build_family(args.width, args.family, max_members=args.max_members)
    print(format_table([e.as_dict() for e in entries]))
    front = pareto_frontier(entries)
    print("\nPareto frontier (max balancer width vs depth):")
    for e in front:
        print(f"  {'x'.join(map(str, e.factors)):>16}  depth={e.stats.depth:<4} max_balancer={e.stats.max_balancer_width}")
    return 0


def _compare(args: argparse.Namespace) -> int:
    print(format_table(comparison_table(args.widths)))
    return 0


def _throughput(args: argparse.Namespace) -> int:
    rows = []
    for e in build_family(args.width, "K"):
        net = k_network(list(e.factors))
        stats = ContentionSimulator(net).run(args.procs, args.ops)
        rows.append(
            {
                "factors": "x".join(map(str, e.factors)),
                "depth": net.depth,
                "max_balancer": net.max_balancer_width,
                "throughput": f"{stats.throughput:.3f}",
                "mean_latency": f"{stats.mean_latency:.2f}",
            }
        )
    print(format_table(rows))
    return 0


def _export(args: argparse.Namespace) -> int:
    from .viz import to_dot, to_layered_json

    net = _make_network(args.family, args.factors)
    print(to_dot(net) if args.format == "dot" else to_layered_json(net, indent=2))
    return 0


def _smooth(args: argparse.Namespace) -> int:
    from .verify import observed_smoothness

    net = _make_network(args.family, args.factors)
    sm = observed_smoothness(net)
    print(f"{net.name}: width={net.width} depth={net.depth} observed smoothness={sm}")
    print("(1 means counting-grade balance; identity would be unbounded)")
    return 0


def _linearize(args: argparse.Namespace) -> int:
    from .analysis import check_history, find_nonlinearizable_execution, run_sequential_history

    net = _make_network(args.family, args.factors)
    seq_ok = check_history(run_sequential_history(net, 2 * net.width)) is None
    print(f"{net.name}: sequential executions linearizable: {seq_ok}")
    found = find_nonlinearizable_execution(net)
    if found is None:
        print("no non-linearizable execution found with the stalled-token template")
        return 0
    violation, _ = found
    print(f"asynchronous counterexample: {violation}")
    print("(fix: the waiting discipline of repro.sim.LinearizedThreadedCounter)")
    return 0


def _audit(args: argparse.Namespace) -> int:
    from .analysis import critical_path, layer_profile, occupancy

    net = _make_network(args.family, args.factors)
    print(f"{net.name}: width={net.width} depth={net.depth} size={net.size} "
          f"occupancy={occupancy(net):.3f}")
    rows = [
        {
            "layer": p.layer,
            "balancers": p.balancers,
            "widths": ",".join(f"{w}x{c}" for w, c in p.widths.items()),
            "coverage": f"{p.coverage:.2f}",
        }
        for p in layer_profile(net)
    ]
    print(format_table(rows))
    path = critical_path(net)
    print("critical path balancer widths:", [b.width for b in path])
    return 0


def _parse_widths(text: str) -> list[int]:
    """Parse ``--widths 2,3,5`` (or space-separated) into factor list."""
    try:
        factors = [int(tok) for tok in text.replace(",", " ").split()]
    except ValueError:
        raise SystemExit(f"--widths needs integer factors, got {text!r}") from None
    if not factors:
        raise SystemExit("--widths needs at least one factor, e.g. --widths 2,3,5")
    return _check_factors(factors)


def _profile(args: argparse.Namespace) -> int:
    import pathlib

    from . import obs

    factors = _parse_widths(args.widths)
    report = obs.profile_network(
        lambda: _BUILDERS[args.construction](factors),
        workload=args.workload,
        tokens=args.tokens,
        scheduler=args.scheduler,
        procs=args.procs,
        ops=args.ops,
        batch=args.batch,
        workers=args.workers,
        seed=args.seed,
        semantics=args.semantics,
    )
    n = report.network
    print(
        f"{n['name']}: width={n['width']} depth={n['depth']} size={n['size']} "
        f"workload={report.workload} semantics={report.semantics}"
    )
    print("  " + "  ".join(f"{k}={v}" for k, v in report.summary.items()))
    print("\nper-layer hot spots:")
    print(report.layer_table())
    if report.balancer_rows:
        print(f"\ntop {min(args.top, len(report.balancer_rows))} balancers:")
        print(report.balancer_table(args.top))
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = obs.write_bench_json(
        "profile", report.bench_payload(), directory=out_dir, family=args.construction
    )
    trace_path = report.tracer.export_jsonl(out_dir / "BENCH_profile_trace.jsonl")
    print(f"\nwrote {json_path} and {trace_path}")
    return 0


def _make_service(args: argparse.Namespace):
    """Build the CountingService a serve/loadgen invocation asked for:
    explicit factors (``--widths``) or a planner query (``--width`` +
    ``--max-balancer``)."""
    from .serve import CountingService

    kwargs = dict(
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        queue_limit=args.queue_limit,
        validate=not args.no_validate,
    )
    variant = getattr(args, "variant", "stock")
    if args.width is not None:
        return CountingService.from_plan(
            args.width, args.max_balancer, family=args.construction,
            variant=variant, **kwargs
        )
    factors = _parse_widths(args.widths)
    return CountingService(_make_network(args.construction, factors, variant), **kwargs)


def _add_service_args(p: argparse.ArgumentParser) -> None:
    """The network/batching flags shared by ``serve`` and ``loadgen``."""
    p.add_argument(
        "--widths", default="2,3",
        help="comma-separated balancer-width factors, e.g. 2,3,5 (default 2,3)",
    )
    p.add_argument(
        "--width", type=int, default=None,
        help="plan mode: serve this width (needs --max-balancer; overrides --widths)",
    )
    p.add_argument(
        "--max-balancer", type=int, default=8,
        help="plan mode: widest balancer the plan may use (default 8)",
    )
    p.add_argument("--construction", choices=["K", "L", "C"], default="K")
    _add_variant_arg(p)
    p.add_argument("--max-batch", type=int, default=64, help="requests per vectorized batch")
    p.add_argument(
        "--max-delay", type=float, default=0.001,
        help="seconds to linger for batch company after the first request",
    )
    p.add_argument(
        "--queue-limit", type=int, default=1024,
        help="pending requests before submissions are rejected (backpressure)",
    )
    p.add_argument(
        "--no-validate", action="store_true",
        help="skip the per-batch contiguous-range check",
    )


def _serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import CountingServer

    service = _make_service(args)
    server = CountingServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        host, port = server.address
        net = service.net
        print(
            f"serving {net.name} (width={net.width} depth={net.depth}) "
            f"on {host}:{port}  max_batch={service._batcher.max_batch} "
            f"max_delay={service._batcher.max_delay} queue_limit={service._batcher.queue_limit}",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0


def _loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import pathlib

    from . import obs
    from .serve import LoadGenerator, run_multiprocess_tcp

    if args.procs > 1:
        if not args.connect:
            raise SystemExit("--procs > 1 needs --connect (a running server or cluster router)")
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            raise SystemExit(f"--connect needs HOST:PORT, got {args.connect!r}")
        report = run_multiprocess_tcp(
            host,
            int(port),
            procs=args.procs,
            clients=args.clients,
            ops=args.ops,
            amount=args.amount,
            mode=args.mode,
            rate=args.rate,
            seed=args.seed,
            reconnect=args.reconnect,
        )
        return _loadgen_emit(args, report)

    gen = LoadGenerator(
        mode=args.mode,
        clients=args.clients,
        ops=args.ops,
        amount=args.amount,
        rate=args.rate,
        seed=args.seed,
        reconnect=args.reconnect,
    )

    async def run():
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            if not host or not port.isdigit():
                raise SystemExit(f"--connect needs HOST:PORT, got {args.connect!r}")
            return await gen.run_tcp(host, int(port))
        service = _make_service(args)
        async with service:
            return await gen.run_service(service)

    report = asyncio.run(run())
    return _loadgen_emit(args, report)


def _loadgen_emit(args: argparse.Namespace, report) -> int:
    import pathlib

    from . import obs

    summary = report.summary()
    net = report.service_stats.get("network", {})
    family = str(net.get("name", "")).partition("(")[0] or None
    print(f"target: {net.get('name', args.connect)} width={net.get('width')} depth={net.get('depth')}")
    for k, v in summary.items():
        print(f"  {k} = {v}")
    hist = report.service_stats.get("batch_size_hist", {})
    if hist:
        print("  batch-size histogram:")
        for size, count in sorted(hist.items(), key=lambda kv: int(kv[0])):
            print(f"    {size:>5} : {count}")
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = obs.write_bench_json("serve", report.bench_payload(), directory=out_dir, family=family)
    print(f"wrote {path}")
    if not report.exactly_once:
        print("ERROR: exactly-once violated (values not one contiguous distinct range)")
        return 1
    return 0


def _cluster_start(args: argparse.Namespace) -> int:
    import asyncio
    import signal as _signal

    from .cluster import Cluster, ClusterConfig

    factors = _parse_widths(args.widths)
    cfg = ClusterConfig(
        shards=args.shards,
        wal_dir=args.wal_dir,
        factors=tuple(factors),
        construction=args.construction,
        host=args.host,
        router_port=args.port,
        mode=args.mode,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        queue_limit=args.queue_limit,
        fsync=not args.no_fsync,
        adaptive=args.adaptive,
        obs=args.obs,
        rate=args.rate,
        burst=args.burst,
    )

    async def run() -> None:
        async with Cluster(cfg) as cluster:
            host, port = cluster.address
            print(
                f"cluster: {cfg.shards} shard(s) behind router {host}:{port} "
                f"(mode={cfg.mode}, wal_dir={cfg.wal_dir})",
                flush=True,
            )
            for w in cluster.workers:
                info = w.last_ready or {}
                print(
                    f"  shard {w.shard_id}: pid={info.get('pid')} port={w.port} "
                    f"recovered_total={info.get('recovered_total', 0)}",
                    flush=True,
                )
            print(f"state file: {cfg.state_path}", flush=True)
            # Serve until signalled.  SIGTERM matters as much as SIGINT:
            # backgrounded jobs inherit SIGINT=SIG_IGN (POSIX), so process
            # managers and CI scripts stop us with `kill -TERM`, and the
            # handler lets Cluster.__aexit__ terminate the shard children
            # and unlink the state file instead of orphaning them.
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (_signal.SIGTERM, _signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except (NotImplementedError, RuntimeError):
                    pass  # non-Unix loop: KeyboardInterrupt still works
            await stop.wait()
            print("shutting down", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0


def _cluster_status(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .cluster import Cluster

    try:
        state = Cluster.read_state(args.wal_dir)
    except FileNotFoundError:
        print(f"no cluster state file under {args.wal_dir!r} (is a cluster running?)")
        return 1
    router = state.get("router", {})
    print(
        f"cluster pid={state.get('pid')}: {state.get('num_shards')} shard(s), "
        f"router {router.get('host')}:{router.get('port')} (mode={router.get('mode')}), "
        f"restarts={state.get('restarts')}"
    )
    for s in state.get("shards", []):
        print(
            f"  shard {s.get('shard_id')}: pid={s.get('pid')} port={s.get('port')} "
            f"up={s.get('up')} restarts={s.get('restarts')} "
            f"recovered_total={s.get('recovered_total')}"
        )
    if args.no_probe:
        return 0

    async def probe() -> dict | None:
        from .serve import TCPCounterClient

        try:
            client = await TCPCounterClient.connect(router.get("host"), int(router.get("port")))
        except (OSError, TypeError, ValueError):
            return None
        try:
            return await client.stats()
        finally:
            await client.close()

    stats = asyncio.run(probe())
    if stats is None:
        print("router probe: not reachable (stale state file?)")
        return 1
    print(f"router probe: issued={stats.get('issued')} queue_depth={stats.get('queue_depth')}")
    if args.json:
        print(json.dumps(stats, indent=2, default=str))
    return 0


def _cluster_kill_shard(args: argparse.Namespace) -> int:
    import os
    import signal as _signal

    from .cluster import Cluster

    try:
        state = Cluster.read_state(args.wal_dir)
    except FileNotFoundError:
        print(f"no cluster state file under {args.wal_dir!r} (is a cluster running?)")
        return 1
    shards = {s.get("shard_id"): s for s in state.get("shards", [])}
    if args.shard_id not in shards:
        print(f"no shard {args.shard_id} (cluster has {sorted(shards)})")
        return 1
    pid = shards[args.shard_id].get("pid")
    if not pid:
        print(f"shard {args.shard_id} has no recorded pid")
        return 1
    try:
        os.kill(int(pid), _signal.SIGKILL)
    except ProcessLookupError:
        print(f"shard {args.shard_id} (pid {pid}) is already gone")
        return 1
    print(
        f"sent SIGKILL to shard {args.shard_id} (pid {pid}); "
        "the cluster supervisor will restart it with a WAL replay"
    )
    return 0


def _fuzz_mutate(args: argparse.Namespace) -> int:
    import pathlib

    from . import obs
    from .faults import run_conformance

    backend = getattr(args, "backend", "auto")
    km = run_conformance(seed=args.seed, sites_per_fault=args.sites, backend=backend)
    d = km.as_dict()
    rows = [
        {k: str(v) for k, v in row.items()}
        for row in d["matrix"]
    ]
    print(f"kill matrix (seed={args.seed}, sites/fault={args.sites}, backend={backend}):")
    print(format_table(rows))
    s = d["summary"]
    print(
        f"mutants={s['mutants']} live={s['live']} equivalent={s['equivalent']} "
        f"escaped={s['escaped']} complete={s['complete']}"
    )
    for t in km.escapes():
        print(f"  ESCAPE: {t.origin} {t.fault}@{','.join(map(str, t.site))} "
              f"(applicable: {', '.join(t.applicable)})")
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = obs.write_bench_json("fuzz", {"mode": "mutate", **d}, directory=out_dir)
    print(f"wrote {path}")
    return 0 if km.complete() else 1


def _fuzz_inputs(args: argparse.Namespace) -> int:
    import pathlib

    from . import obs
    from .faults import fuzz_inputs

    net = _make_network(args.family, args.factors)
    baseline = None
    if args.differential:
        if net.width & (net.width - 1) == 0:
            baseline = bitonic_network(net.width)
        else:  # bitonic needs a power-of-two width; fall back to general Batcher
            from .baselines import batcher_any_network

            baseline = batcher_any_network(net.width)
    report = fuzz_inputs(
        net,
        rounds=args.rounds,
        seed=args.seed,
        corpus_dir=args.corpus or None,
        baseline=baseline,
        max_violations=args.max_violations,
    )
    print(
        f"{net.name}: trials={report.trials} corpus_seeds={report.corpus_seeds} "
        f"violations={len(report.violations)} "
        f"differential_mismatches={report.differential_mismatches}"
    )
    for v in report.violations:
        print(f"  VIOLATION ({v.source}): input {list(v.input_counts)} "
              f"-> output {list(v.output_counts)} (shrunk from {list(v.original_input)})")
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = obs.write_bench_json(
        "fuzz", {"mode": "inputs", **report.as_dict()}, directory=out_dir
    )
    print(f"wrote {path}")
    return 0 if report.clean else 1


def _top(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.top import run_top

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"--connect must be host:port, got {args.connect!r}")
        return 2
    try:
        frames = asyncio.run(
            run_top(
                host,
                int(port),
                interval=args.interval,
                iterations=args.iterations,
                clear=not args.no_clear,
            )
        )
    except KeyboardInterrupt:
        return 0
    return 0 if frames else 1


def _fuzz_chaos(args: argparse.Namespace) -> int:
    import pathlib

    from . import obs
    from .faults import chaos_token_check, run_chaos
    from .serve import CountingService

    factors = _parse_widths(args.widths)
    inject = getattr(args, "inject", "none")
    if inject == "shard-kill":
        return _fuzz_chaos_shard_kill(args, factors)
    base_net = net = _BUILDERS[args.construction](factors)
    if inject == "stuck":
        from .faults.mutator import stuck_balancer

        net = stuck_balancer(net, 0, port=0)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    service = CountingService(net, max_batch=args.max_batch, max_delay=args.max_delay)
    report = run_chaos(
        service,
        requests=args.requests,
        clients=args.clients,
        seed=args.seed,
        drop_before_rate=args.drop_before,
        drop_after_rate=args.drop_after,
        delay_rate=args.delay_rate,
        dup_rate=args.dup_rate,
        cancel_rate=args.cancel_rate,
        corrupt_state_after=args.inject_after if inject == "state" else None,
        flight_dir=out_dir if inject != "none" else None,
    )
    d = report.as_dict()
    print(f"{net.name}: chaos over {report.requests} requests (seed={args.seed})")
    print(
        f"  issued={report.issued} delivered={report.delivered} "
        f"lost_to_drops={report.lost_to_drops} cancelled={report.cancelled_requests} "
        f"retries={report.retries}"
    )
    print("  injected: " + "  ".join(f"{k}={v}" for k, v in sorted(report.injected.items())))
    for e in report.escapes:
        print(f"  FAULT ESCAPE [{e.kind}]: {e.detail}")
    if report.flight_dump:
        print(f"  flight recorder dump: {report.flight_dump}")
    token_escape = chaos_token_check(base_net, seed=args.seed)
    d["token_check"] = token_escape.as_dict() if token_escape else None
    if token_escape:
        print(f"  FAULT ESCAPE [{token_escape.kind}]: {token_escape.detail}")
    print(f"  exactly-once: {report.exactly_once and token_escape is None}")
    path = obs.write_bench_json(
        "fuzz", {"mode": "chaos", **d}, directory=out_dir, family=args.construction
    )
    print(f"wrote {path}")
    return 0 if (report.exactly_once and token_escape is None) else 1


def _fuzz_chaos_shard_kill(args: argparse.Namespace, factors: list[int]) -> int:
    import pathlib

    from . import obs
    from .faults import run_shard_kill_chaos

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    report = run_shard_kill_chaos(
        shards=args.shards,
        clients=args.clients,
        ops=max(1, args.requests // args.clients),
        kills=args.kills,
        seed=args.seed,
        factors=tuple(factors),
        flight_dir=out_dir,
    )
    print(
        f"shard-kill chaos: {args.shards} shard(s), {report.requests} requests "
        f"(seed={args.seed})"
    )
    print(
        f"  issued={report.issued} delivered={report.delivered} "
        f"gaps={report.lost_to_drops} rejected_during_restart={report.retries}"
    )
    print("  injected: " + "  ".join(f"{k}={v}" for k, v in sorted(report.injected.items())))
    for e in report.escapes:
        print(f"  FAULT ESCAPE [{e.kind}]: {e.detail}")
    if report.flight_dump:
        print(f"  flight recorder dump: {report.flight_dump}")
    print(f"  exactly-once: {report.exactly_once}")
    path = obs.write_bench_json(
        "fuzz",
        {"mode": "chaos-shard-kill", "shards": args.shards, "kills": args.kills,
         **report.as_dict()},
        directory=out_dir,
        family=args.construction,
    )
    print(f"wrote {path}")
    return 0 if report.exactly_once else 1


def _cache(args: argparse.Namespace) -> int:
    from .core.cache import PlanCache, default_cache

    cache = PlanCache(args.dir) if args.dir else default_cache()
    if args.cache_command == "stats":
        for k, v in cache.stats().items():
            if k == "variants":
                print("  entries by variant:")
                for name, count in v.items():
                    print(f"    {name} = {count}")
            else:
                print(f"  {k} = {v}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached files from {cache.root}")
    return 0


def _search_payload_common(args: argparse.Namespace, mode: str) -> dict:
    return {
        "mode": mode,
        "width": args.width,
        "target_depth": args.target_depth,
    }


def _search_record(args: argparse.Namespace, result, origin: str) -> None:
    """Append a found network to a JSON registry file (``--save``)."""
    import pathlib

    from .search import Registry

    path = pathlib.Path(args.save)
    registry = Registry.load(path) if path.exists() else Registry()
    entry = registry.add(result.width, result.comparators, origin=origin)
    registry.save(path)
    print(f"saved {entry.kind} entry (depth {entry.depth}, {entry.size} comparators) to {path}")


def _search_beam(args: argparse.Namespace) -> int:
    import pathlib

    from . import obs
    from .search import beam_search

    result = beam_search(
        args.width,
        args.target_depth,
        beam_width=args.beam_width,
        fanout=args.fanout,
        max_expansions=args.max_expansions,
        seed=args.seed,
        objective=args.objective,
    )
    payload = {
        **_search_payload_common(args, "beam"),
        "found": result.found,
        "depth": result.depth if result.found else None,
        "size": result.size if result.found else None,
        "expansions": result.expansions,
        "seed": result.seed,
        "objective": args.objective,
        "beam_width": args.beam_width,
        "fanout": args.fanout,
        "layers": [[list(c) for c in layer] for layer in result.layers],
    }
    # Artifacts first: a consumer closing stdout early (`| head`) must not
    # lose the bench envelope or the --save registry append.
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = obs.write_bench_json("search", payload, directory=out_dir)
    if result.found and args.save:
        _search_record(args, result, origin=f"beam:seed{result.seed}")
    if result.found:
        print(
            f"found a width-{result.width} sorting network: depth={result.depth} "
            f"size={result.size} ({result.expansions} expansions, seed={result.seed})"
        )
        for i, layer in enumerate(result.layers):
            print(f"  layer {i}: {' '.join(f'({a},{b})' for a, b in layer)}")
    else:
        print(
            f"no depth-{args.target_depth} network found for width {args.width} "
            f"within {result.expansions} expansions"
        )
    print(f"wrote {path}")
    return 0 if result.found else 1


def _search_sat(args: argparse.Namespace) -> int:
    import pathlib

    from . import obs
    from .search import SearchDependencyError, sat_search

    try:
        result = sat_search(
            args.width,
            args.target_depth,
            max_rounds=args.max_rounds,
            solver_name=args.solver,
        )
    except SearchDependencyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = {
        **_search_payload_common(args, "sat"),
        "status": result.status,
        "found": result.found,
        "depth": args.target_depth if result.found else None,
        "size": len(result.comparators) if result.found else None,
        "rounds": result.rounds,
        "num_vars": result.num_vars,
        "num_clauses": result.num_clauses,
        "counterexamples": result.counterexamples,
        "layers": [[list(c) for c in layer] for layer in result.layers],
    }
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = obs.write_bench_json("search", payload, directory=out_dir)
    if result.found and args.save:
        _search_record(args, result, origin=f"sat:d{args.target_depth}")
    if result.found:
        print(
            f"SAT: width-{result.width} depth-{args.target_depth} network with "
            f"{len(result.comparators)} comparators "
            f"({result.rounds} refinement rounds, {result.counterexamples} counterexamples)"
        )
    elif result.status == "unsat":
        print(
            f"UNSAT: no standard-form width-{args.width} sorting network of "
            f"depth {args.target_depth} exists ({result.rounds} rounds)"
        )
    else:
        print(f"inconclusive after {result.rounds} refinement rounds")
    print(f"wrote {path}")
    return 0 if result.found else 1


def _search_show(args: argparse.Namespace) -> int:
    from .search import Registry, default_registry

    registry = Registry.load(args.registry) if args.registry else default_registry()
    rows = [
        {
            "width": e.width,
            "kind": e.kind,
            "depth": e.depth,
            "size": e.size,
            "origin": e.origin,
        }
        for e in sorted(registry, key=lambda e: (e.width, e.kind, e.depth))
    ]
    print(format_table(rows))
    print(f"\n{len(registry)} entries, every one validated exhaustively over all 2^w 0-1 inputs")
    return 0


def _plan(args: argparse.Namespace) -> int:
    from .analysis import plan_network

    plan = plan_network(args.width, args.max_balancer, args.plan_family)
    pad = f" (padded from {plan.requested_width})" if plan.padded else ""
    print(f"width {plan.width}{pad}: {plan.family}{plan.factors}")
    print(
        f"  depth={plan.depth} balancers={plan.size} widest balancer="
        f"{plan.max_balancer_width} (budget {args.max_balancer})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-networks",
        description="Sorting and counting networks of small depth and arbitrary width "
        "(Busch & Herlihy, SPAA 1999).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pb = sub.add_parser("build", help="build a network and print stats")
    pb.add_argument("family", choices=sorted(_BUILDERS))
    pb.add_argument("factors", type=int, nargs="+")
    pb.add_argument("--diagram", action="store_true")
    _add_variant_arg(pb)
    pb.set_defaults(fn=_build)

    pv = sub.add_parser("verify", help="search for counting/sorting violations")
    pv.add_argument("family", choices=sorted(_BUILDERS))
    pv.add_argument("factors", type=int, nargs="+")
    pv.add_argument("--seed", type=int, default=0)
    _add_variant_arg(pv)
    _add_backend_arg(pv)
    pv.set_defaults(fn=_verify)

    pf = sub.add_parser("family", help="factorization family table for a width")
    pf.add_argument("width", type=int)
    pf.add_argument("--family", choices=["K", "L"], default="K")
    pf.add_argument("--max-members", type=int, default=None)
    pf.set_defaults(fn=_family)

    pc = sub.add_parser("compare", help="related-work comparison table")
    pc.add_argument("widths", type=int, nargs="+")
    pc.set_defaults(fn=_compare)

    pt = sub.add_parser("throughput", help="contention model across a family")
    pt.add_argument("width", type=int)
    pt.add_argument("--procs", type=int, default=16)
    pt.add_argument("--ops", type=int, default=20)
    pt.set_defaults(fn=_throughput)

    pe = sub.add_parser("export", help="emit DOT or layered JSON")
    pe.add_argument("family", choices=sorted(_BUILDERS))
    pe.add_argument("factors", type=int, nargs="+")
    pe.add_argument("--format", choices=["dot", "json"], default="dot")
    pe.set_defaults(fn=_export)

    ps = sub.add_parser("smooth", help="observed smoothing constant")
    ps.add_argument("family", choices=sorted(_BUILDERS))
    ps.add_argument("factors", type=int, nargs="+")
    ps.set_defaults(fn=_smooth)

    pl = sub.add_parser("linearize", help="linearizability analysis (paper §6)")
    pl.add_argument("family", choices=sorted(_BUILDERS))
    pl.add_argument("factors", type=int, nargs="+")
    pl.set_defaults(fn=_linearize)

    pa = sub.add_parser("audit", help="layer profile and critical path")
    pa.add_argument("family", choices=sorted(_BUILDERS))
    pa.add_argument("factors", type=int, nargs="+")
    pa.set_defaults(fn=_audit)

    pr = sub.add_parser(
        "profile",
        help="observability: hot-spot profile of build + a workload",
    )
    pr.add_argument(
        "--widths", required=True,
        help="comma-separated balancer-width factors, e.g. 2,3,5",
    )
    pr.add_argument("--construction", choices=sorted(_BUILDERS), default="K")
    pr.add_argument("--workload", choices=["tokens", "contention", "counts"], default="tokens")
    pr.add_argument("--tokens", type=int, default=None, help="token count (tokens workload)")
    pr.add_argument("--scheduler", default="random", help="scheduler name (tokens workload)")
    pr.add_argument("--procs", type=int, default=8, help="processes (contention workload)")
    pr.add_argument("--ops", type=int, default=4, help="ops per process (contention workload)")
    pr.add_argument("--batch", type=int, default=64, help="batch size (counts workload)")
    pr.add_argument(
        "--semantics", choices=["count", "sort", "token"], default="count",
        help="plan kernel the counts workload drives (counts workload)",
    )
    pr.add_argument(
        "--workers", type=int, default=None,
        help="shard the counts batch over N worker processes (counts workload)",
    )
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--top", type=int, default=10, help="balancer rows to print")
    pr.add_argument("--out-dir", default=".", help="where BENCH_profile.json + trace land")
    pr.set_defaults(fn=_profile)

    pserve = sub.add_parser("serve", help="run the TCP counting service")
    _add_service_args(pserve)
    pserve.add_argument("--host", default="127.0.0.1")
    pserve.add_argument("--port", type=int, default=0, help="0 binds an ephemeral port")
    pserve.set_defaults(fn=_serve)

    pcl = sub.add_parser(
        "cluster",
        help="sharded WAL-durable counting cluster: start, status, kill-shard",
    )
    clsub = pcl.add_subparsers(dest="cluster_command", required=True)

    cls_ = clsub.add_parser("start", help="run shards + router in the foreground")
    cls_.add_argument("--shards", type=int, default=2, help="shard processes (residue classes)")
    cls_.add_argument(
        "--wal-dir", required=True,
        help="directory for per-shard WALs and the cluster state file",
    )
    cls_.add_argument("--widths", default="2,3", help="balancer-width factors per shard")
    cls_.add_argument("--construction", choices=["K", "L", "C"], default="K")
    cls_.add_argument("--host", default="127.0.0.1")
    cls_.add_argument("--port", type=int, default=0, help="router port (0 = ephemeral)")
    cls_.add_argument(
        "--mode", choices=["line", "splice"], default="line",
        help="router forwarding: line parses/aggregates, splice shovels bytes",
    )
    cls_.add_argument("--max-batch", type=int, default=64)
    cls_.add_argument("--max-delay", type=float, default=0.001)
    cls_.add_argument("--queue-limit", type=int, default=1024)
    cls_.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on WAL appends (faster; durable only to the OS cache)",
    )
    cls_.add_argument(
        "--adaptive", action="store_true",
        help="run the adaptive batch tuner in every shard",
    )
    cls_.add_argument(
        "--obs", action="store_true",
        help="enable observability (REPRO_OBS) inside every shard",
    )
    cls_.add_argument(
        "--rate", type=float, default=None,
        help="per-client token-bucket rate (tokens/second; default: no limiting)",
    )
    cls_.add_argument(
        "--burst", type=float, default=None,
        help="token-bucket capacity (default 2x rate)",
    )
    cls_.set_defaults(fn=_cluster_start)

    clst = clsub.add_parser("status", help="read the state file and probe the router")
    clst.add_argument("--wal-dir", required=True)
    clst.add_argument("--no-probe", action="store_true", help="skip the live router STATS probe")
    clst.add_argument("--json", action="store_true", help="dump the full STATS JSON")
    clst.set_defaults(fn=_cluster_status)

    clk = clsub.add_parser(
        "kill-shard", help="SIGKILL one shard; the supervisor restarts it via WAL replay"
    )
    clk.add_argument("shard_id", type=int)
    clk.add_argument("--wal-dir", required=True)
    clk.set_defaults(fn=_cluster_kill_shard)

    plg = sub.add_parser(
        "loadgen",
        help="drive a counting service with load; writes BENCH_serve.json",
    )
    _add_service_args(plg)
    plg.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="drive a running server instead of an in-process service",
    )
    plg.add_argument("--mode", choices=["closed", "open"], default="closed")
    plg.add_argument("--clients", type=int, default=16, help="workers / connection pool size")
    plg.add_argument(
        "--ops", type=int, default=50,
        help="closed: requests per client; open: total requests",
    )
    plg.add_argument("--amount", type=int, default=1, help="values per INC request")
    plg.add_argument("--rate", type=float, default=2000.0, help="open-loop arrivals/second")
    plg.add_argument("--seed", type=int, default=0)
    plg.add_argument(
        "--procs", type=int, default=1,
        help="client-side OS processes (>1 needs --connect; seeds offset per process)",
    )
    plg.add_argument(
        "--reconnect", action="store_true",
        help="TCP clients survive dropped connections (backoff + retry)",
    )
    plg.add_argument("--out-dir", default=".", help="where BENCH_serve.json lands")
    plg.set_defaults(fn=_loadgen)

    ptop = sub.add_parser(
        "top", help="live terminal dashboard for a running counting server"
    )
    ptop.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="server to poll"
    )
    ptop.add_argument("--interval", type=float, default=1.0, help="seconds between polls")
    ptop.add_argument(
        "--iterations", type=int, default=0, help="frames to render (0 = until interrupted)"
    )
    ptop.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (logs, CI)",
    )
    ptop.set_defaults(fn=_top)

    pz = sub.add_parser(
        "fuzz",
        help="fault injection: mutation kill-matrix, input fuzzing, chaos service",
    )
    zsub = pz.add_subparsers(dest="fuzz_command", required=True)

    zm = zsub.add_parser("mutate", help="inject faults; assert every class is caught")
    zm.add_argument("--seed", type=int, default=0)
    zm.add_argument("--sites", type=int, default=2, help="injection sites per fault class")
    zm.add_argument("--out-dir", default=".", help="where BENCH_fuzz.json lands")
    _add_backend_arg(zm)
    zm.set_defaults(fn=_fuzz_mutate)

    zi = zsub.add_parser("inputs", help="fuzz a network's step property with shrinking")
    zi.add_argument("family", choices=sorted(_BUILDERS))
    zi.add_argument("factors", type=int, nargs="+")
    zi.add_argument("--rounds", type=int, default=200)
    zi.add_argument("--seed", type=int, default=0)
    zi.add_argument("--corpus", default=None, help="corpus directory (default tests/corpus)")
    zi.add_argument("--max-violations", type=int, default=5)
    zi.add_argument(
        "--differential", action="store_true",
        help="also run the differential sorting oracle against a bitonic baseline",
    )
    zi.add_argument("--out-dir", default=".", help="where BENCH_fuzz.json lands")
    zi.set_defaults(fn=_fuzz_inputs)

    zc = zsub.add_parser("chaos", help="chaos-inject a counting service; audit exactly-once")
    zc.add_argument("--widths", default="2,3", help="balancer-width factors, e.g. 2,2,2")
    zc.add_argument("--construction", choices=["K", "L", "C"], default="K")
    zc.add_argument("--requests", type=int, default=1000)
    zc.add_argument("--clients", type=int, default=16)
    zc.add_argument("--seed", type=int, default=0)
    zc.add_argument("--max-batch", type=int, default=64)
    zc.add_argument("--max-delay", type=float, default=0.0005)
    zc.add_argument("--drop-before", type=float, default=0.03)
    zc.add_argument("--drop-after", type=float, default=0.02)
    zc.add_argument("--delay-rate", type=float, default=0.05)
    zc.add_argument("--dup-rate", type=float, default=0.02)
    zc.add_argument("--cancel-rate", type=float, default=0.03)
    zc.add_argument(
        "--inject", choices=["none", "stuck", "state", "shard-kill"], default="none",
        help="exactly-once violation to inject: a stuck balancer (semantic "
        "fault), a silent issuance-state corruption (executor path), or "
        "shard-kill (SIGKILL cluster shards mid-load and audit the WAL "
        "replay); all arm the flight recorder into --out-dir",
    )
    zc.add_argument(
        "--inject-after", type=int, default=5,
        help="batch number at which --inject state corrupts the state",
    )
    zc.add_argument(
        "--shards", type=int, default=2,
        help="shard-kill: cluster size (shard processes)",
    )
    zc.add_argument(
        "--kills", type=int, default=1,
        help="shard-kill: how many SIGKILLs to deal out",
    )
    zc.add_argument("--out-dir", default=".", help="where BENCH_fuzz.json lands")
    zc.set_defaults(fn=_fuzz_chaos)

    pcache = sub.add_parser("cache", help="persistent build/plan cache: stats or clear")
    csub = pcache.add_subparsers(dest="cache_command", required=True)
    for cmd, chelp in (
        ("stats", "entry count, bytes on disk, hit/miss/store/corrupt counters"),
        ("clear", "delete every cached artifact"),
    ):
        cp = csub.add_parser(cmd, help=chelp)
        cp.add_argument(
            "--dir", default=None,
            help="cache directory (default: REPRO_CACHE_DIR or <repo>/.repro_cache)",
        )
        cp.set_defaults(fn=_cache)

    pp = sub.add_parser("plan", help="best family member for a width + balancer budget")
    pp.add_argument("width", type=int)
    pp.add_argument("max_balancer", type=int)
    pp.add_argument("--family", dest="plan_family", choices=["K", "L"], default="K")
    pp.set_defaults(fn=_plan)

    psearch = sub.add_parser(
        "search",
        help="discover depth-optimal base networks (repro.search): beam, sat, show",
    )
    ssub = psearch.add_subparsers(dest="search_command", required=True)

    sbm = ssub.add_parser(
        "beam", help="seeded deterministic beam search (no optional deps)"
    )
    sbm.add_argument("--width", type=int, required=True)
    sbm.add_argument("--target-depth", type=int, required=True)
    sbm.add_argument("--beam-width", type=int, default=32, help="states kept per layer")
    sbm.add_argument("--fanout", type=int, default=12, help="candidate layers per state")
    sbm.add_argument("--max-expansions", type=int, default=20_000, help="search budget")
    sbm.add_argument("--seed", type=int, default=0)
    sbm.add_argument("--objective", choices=["depth", "size"], default="depth")
    sbm.add_argument("--save", default=None, help="append the found network to this registry JSON")
    sbm.add_argument("--out-dir", default=".", help="where BENCH_search.json lands")
    sbm.set_defaults(fn=_search_beam)

    sst = ssub.add_parser(
        "sat",
        help="CNF placement encoding + CEGAR refinement (needs the pysat 'search' extra)",
    )
    sst.add_argument("--width", type=int, required=True)
    sst.add_argument("--target-depth", type=int, required=True)
    sst.add_argument("--max-rounds", type=int, default=64, help="refinement rounds")
    sst.add_argument("--solver", default="g3", help="pysat solver name (default glucose3)")
    sst.add_argument("--save", default=None, help="append the found network to this registry JSON")
    sst.add_argument("--out-dir", default=".", help="where BENCH_search.json lands")
    sst.set_defaults(fn=_search_sat)

    ssh = ssub.add_parser("show", help="print the best-known network registry (validates on load)")
    ssh.add_argument(
        "--registry", default=None,
        help="registry JSON file (default: the built-in seeded registry)",
    )
    ssh.set_defaults(fn=_search_show)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
