"""Core substrate: sequence predicates, the SSA network IR, layer compiler."""

from .network import Balancer, Network, NetworkBuilder, identity_network, single_balancer_network
from .compiled import CompiledNetwork, WidthGroup, compile_network
from .compose import parallel, repeat, serial
from . import sequences

__all__ = [
    "Balancer",
    "Network",
    "NetworkBuilder",
    "identity_network",
    "single_balancer_network",
    "CompiledNetwork",
    "WidthGroup",
    "compile_network",
    "sequences",
    "parallel",
    "repeat",
    "serial",
]
