"""Core substrate: sequence predicates, the SSA network IR, layer compiler,
flat execution plans, and the persistent build/plan cache."""

from .network import Balancer, Network, NetworkBuilder, identity_network, single_balancer_network
from .compiled import CompiledNetwork, WidthGroup, compile_network
from .bitplan import (
    BitPlan,
    NotZeroOneError,
    evaluate_zero_one_packed,
    pack_zero_one,
    unpack_zero_one,
)
from .plan import ExecutionPlan, PlanExecutor, lower_network, plan_executor
from .cache import PlanCache, cached_network, cached_plan, code_version_hash, default_cache
from .compose import parallel, repeat, serial
from . import sequences

__all__ = [
    "Balancer",
    "Network",
    "NetworkBuilder",
    "identity_network",
    "single_balancer_network",
    "CompiledNetwork",
    "WidthGroup",
    "compile_network",
    "BitPlan",
    "NotZeroOneError",
    "evaluate_zero_one_packed",
    "pack_zero_one",
    "unpack_zero_one",
    "ExecutionPlan",
    "PlanExecutor",
    "lower_network",
    "plan_executor",
    "PlanCache",
    "cached_network",
    "cached_plan",
    "code_version_hash",
    "default_cache",
    "sequences",
    "parallel",
    "repeat",
    "serial",
]
