"""Pluggable per-balancer semantics for the flat plan executor.

The paper's three views of one network — quiescent token counts,
descending comparator sorting, and asynchronous mod-``p`` token routing —
are isomorphic walks over the same wiring (paper §1, Figure 2).  Before
this module each view owned its own network walker; now a single
:class:`~repro.core.plan.ExecutionPlan` sweep is parameterized by a small
kernel object:

``CountSemantics``
    The quiescent-count transfer ``out[j] = ceil((T - j) / p)``: the
    branchless width-2 shift kernel plus the general in-place
    floor-divide kernel (the PR-4 kernels, moved here verbatim).
``SortSemantics``
    Descending compare-exchange: width-2 balancers become a branchless
    ``np.maximum`` / ``np.minimum`` pair, general ``p``-comparators an
    in-place ascending sort read out in reverse.  The evaluation dtype is
    the *input's* dtype — sorting floats or int8 0-1 vectors through the
    int64 count kernels would corrupt them, so the executor's scratch
    pool keys buffers by ``(batch, dtype)``.
``TokenSemantics``
    The asynchronous balancer stepped to quiescence in batch: each
    balancer's state is its arrival count, token ``i`` leaves on port
    ``i mod p``, so a total of ``T`` arrivals decomposes into
    ``T // p`` full rounds plus a residue ``T mod p`` spread over the
    first ports — ``out[j] = T // p + (j < T mod p)``.  Numerically
    identical to ``CountSemantics`` (that identity *is* the paper's
    quiescence argument, and the differential suite pins it), but
    computed as explicit mod-``p`` state so the kernel is the batched
    form of :class:`~repro.sim.token_sim.TokenSimulator`'s hop rule.

Every semantics also carries the per-balancer **override sweep** used for
:class:`repro.faults.FaultyNetwork` mutants, whose behavior (e.g. a stuck
routing bit) is not expressible in the structural IR the plan compiler
consumes.  Overridden networks never take the flat-plan fast path; the
sweeps here are the single implementation all simulators share.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SEMANTICS",
    "Semantics",
    "CountSemantics",
    "SortSemantics",
    "TokenSemantics",
    "get_semantics",
]

#: Execution semantics a :class:`~repro.core.plan.PlanExecutor` can run.
SEMANTICS = ("count", "sort", "token")


class Semantics:
    """One balancer transfer function, vectorized over plan segments.

    Subclasses implement :meth:`segment` — evaluate one ``(layer, width)``
    segment of ``k`` balancers of width ``p`` in place — plus
    :meth:`prepare` (input casting policy) and :meth:`apply_overridden`
    (the per-balancer fault sweep).  Instances are stateless singletons
    shared by every executor; the only mutable member is the tiny
    per-width offset-column cache.

    Kernel gathers use ``np.take(..., mode="clip")``: the default
    ``mode="raise"`` spends a full extra pass bounds-checking the index
    array (~3x the gather cost at plan scale), and every plan index is
    already validated once at lowering/deserialization time
    (:meth:`~repro.core.plan.ExecutionPlan._validate`).
    """

    #: Registry name; also stamped into spans, cache keys and stats.
    name = "semantics"

    def __init__(self) -> None:
        # Per-width position column (p, 1, 1), shared across executors.
        self._offsets: dict[int, np.ndarray] = {}

    def _offset_col(self, p: int) -> np.ndarray:
        col = self._offsets.get(p)
        if col is None:
            col = np.arange(p, dtype=np.int64)[:, None, None]
            self._offsets[p] = col
        return col

    def prepare(self, x: np.ndarray) -> np.ndarray:
        """Cast a validated ``(B, w)`` batch to the evaluation dtype."""
        return np.ascontiguousarray(x, dtype=np.int64)

    def segment(self, state, scratch, in_flat, p: int, k: int, off: int, ob: int) -> None:
        raise NotImplementedError

    def apply_overridden(self, net, x: np.ndarray, overrides: dict) -> np.ndarray:
        raise NotImplementedError


class CountSemantics(Semantics):
    """Quiescent-count transfer (the original plan kernels)."""

    name = "count"

    def segment(self, state, scratch, in_flat, p: int, k: int, off: int, ob: int) -> None:
        if p == 2:
            g = scratch.gather[: 2 * k]
            np.take(state, in_flat[off : off + 2 * k], axis=0, out=g, mode="clip")
            top = state[ob : ob + k]
            bot = state[ob + k : ob + 2 * k]
            np.add(g[:k], g[k:], out=bot)  # totals
            np.add(bot, 1, out=top)
            np.right_shift(top, 1, out=top)  # ceil(t/2)
            np.right_shift(bot, 1, out=bot)  # floor(t/2)
            return
        size = p * k
        g = scratch.gather[:size]
        np.take(state, in_flat[off : off + size], axis=0, out=g, mode="clip")
        vals = g.reshape(p, k, -1)
        tot = scratch.totals[:k]
        vals.sum(axis=0, out=tot)
        out = state[ob : ob + size].reshape(p, k, -1)
        # out[j] = (tot - j + p - 1) // p, computed without temporaries.
        np.subtract(tot[None, :, :], self._offset_col(p), out=out)
        np.add(out, p - 1, out=out)
        np.floor_divide(out, p, out=out)

    def apply_overridden(self, net, x: np.ndarray, overrides: dict) -> np.ndarray:
        """Per-balancer batched count sweep honoring semantic overrides."""
        batch = x.shape[0]
        in_idx, out_idx = net.io_arrays()
        _, in_concat, out_concat, bounds = net.wire_arrays()
        blist = bounds.tolist()
        state = np.zeros((net.num_wires, batch), dtype=np.int64)
        state[in_idx] = x.T
        for b in net.balancers:
            lo, hi = blist[b.index], blist[b.index + 1]
            totals = state[in_concat[lo:hi]].sum(axis=0)
            ov = overrides.get(b.index)
            if ov is not None:
                state[out_concat[lo:hi]] = ov.apply_counts(totals, b.width)
            else:
                j = np.arange(b.width, dtype=np.int64)[:, None]
                state[out_concat[lo:hi]] = (totals[None, :] - j + b.width - 1) // b.width
        return state[out_idx].T


#: Widest comparator evaluated with the branchless compare-exchange
#: network; wider (rare) comparators fall back to ``np.sort``.
_MAX_CE_WIDTH = 8

_ce_pair_cache: dict[int, tuple[tuple[int, int], ...]] = {}


def _ce_pairs(n: int) -> tuple[tuple[int, int], ...]:
    """Batcher odd-even mergesort compare-exchange pairs for ``n`` rows.

    Generated for the next power of two with out-of-range pairs dropped —
    valid because virtual high-index elements are max-sentinels that no
    compare-exchange can move (the standard padding argument), and pinned
    by the exhaustive 0-1 check in the semantics test suite.  Optimal for
    ``n <= 8`` (1, 3, 5, 9, 12, 16, 19 comparators).
    """
    cached = _ce_pair_cache.get(n)
    if cached is not None:
        return cached
    m = 1
    while m < n:
        m *= 2
    pairs: list[tuple[int, int]] = []
    p = 1
    while p < m:
        k = p
        while k >= 1:
            for j in range(k % p, m - k, 2 * k):
                for i in range(0, k):
                    if (i + j) // (p * 2) == (i + j + k) // (p * 2) and i + j + k < n:
                        pairs.append((i + j, i + j + k))
            k //= 2
        p *= 2
    _ce_pair_cache[n] = out = tuple(pairs)
    return out


class SortSemantics(Semantics):
    """Descending compare-exchange over the same segment tables."""

    name = "sort"

    def prepare(self, x: np.ndarray) -> np.ndarray:
        # Comparators are dtype-generic: evaluate in the caller's dtype.
        return np.ascontiguousarray(x)

    def segment(self, state, scratch, in_flat, p: int, k: int, off: int, ob: int) -> None:
        size = p * k
        g = scratch.gather[:size]
        np.take(state, in_flat[off : off + size], axis=0, out=g, mode="clip")
        if p == 2 and scratch.numeric:
            # Branchless width-2 min/max: largest value on the top wire.
            np.maximum(g[:k], g[k:], out=state[ob : ob + k])
            np.minimum(g[:k], g[k:], out=state[ob + k : ob + 2 * k])
            return
        vals = g.reshape(p, k, -1)
        out = state[ob : ob + size].reshape(p, k, -1)
        if scratch.numeric and p <= _MAX_CE_WIDTH:
            # Branchless Batcher network over the p gathered row planes:
            # each compare-exchange is one np.maximum + one np.minimum, with
            # buffer rotation instead of a copy-back (max lands in the spare
            # buffer, min overwrites one operand in place, the dead operand
            # becomes the next spare).  Orders of magnitude cheaper than
            # np.sort along the strided balancer axis.  Max-first CE pairs
            # on an ascending network yield the descending convention.
            rows = [vals[j] for j in range(p)]
            tmp = scratch.totals[:k]
            for i, j in _ce_pairs(p):
                a, b = rows[i], rows[j]
                np.maximum(a, b, out=tmp)
                np.minimum(a, b, out=a)
                rows[i], rows[j], tmp = tmp, a, b
            for j in range(p):
                out[j][...] = rows[j]
            return
        # Non-numeric dtypes / very wide comparators: sort ascending in
        # place, read out reversed (dtype-safe, unlike negation).
        vals.sort(axis=0)
        out[...] = vals[::-1]

    def apply_overridden(self, net, values: np.ndarray, overrides: dict) -> np.ndarray:
        """Per-balancer batched comparator sweep honoring overrides.

        A stuck comparator does not compare at all: values pass through in
        arrival order (the value-semantics projection of a dead routing
        bit — token-level stuckness has no conservation-respecting
        analogue over distinct values).
        """
        state = np.zeros((net.num_wires, values.shape[0]), dtype=values.dtype)
        state[list(net.inputs)] = values.T
        for b in net.balancers:
            vals = state[list(b.inputs)]  # (p, B)
            if b.index in overrides:
                state[list(b.outputs)] = vals  # broken comparator: no exchange
            else:
                state[list(b.outputs)] = np.sort(vals, axis=0)[::-1]
        return state[list(net.outputs)].T


class TokenSemantics(Semantics):
    """Batched mod-``p`` token routing, stepped to quiescence per layer.

    Port ``j`` of a balancer that saw ``T`` arrivals from a fresh state
    received ``T // p`` full round-robin rounds plus one residue token iff
    ``j < T mod p``.  Same numbers as :class:`CountSemantics` — by the
    schedule-independence of quiescent states — via the token-routing
    decomposition instead of the ceiling identity.
    """

    name = "token"

    def segment(self, state, scratch, in_flat, p: int, k: int, off: int, ob: int) -> None:
        size = p * k
        g = scratch.gather[:size]
        np.take(state, in_flat[off : off + size], axis=0, out=g, mode="clip")
        if p == 2:
            top = state[ob : ob + k]
            bot = state[ob + k : ob + 2 * k]
            np.add(g[:k], g[k:], out=bot)  # totals
            np.bitwise_and(bot, 1, out=top)  # residue: 1 token iff T odd
            np.right_shift(bot, 1, out=bot)  # full rounds
            np.add(top, bot, out=top)  # port 0 = rounds + residue
            return
        vals = g.reshape(p, k, -1)
        tot = scratch.totals[:k]
        vals.sum(axis=0, out=tot)
        # The gather rows are dead after the totals reduction: reuse row 0
        # as the residue buffer (T mod p) so the kernel allocates nothing.
        rem = g[:k]
        np.remainder(tot, p, out=rem)
        np.floor_divide(tot, p, out=tot)  # tot now holds the full rounds
        out = state[ob : ob + size].reshape(p, k, -1)
        # out[j] = rounds + (j < rem): clip(rem - j, 0, 1) is the indicator.
        np.subtract(rem[None, :, :], self._offset_col(p), out=out)
        np.clip(out, 0, 1, out=out)
        np.add(out, tot[None, :, :], out=out)

    def apply_overridden(self, net, x: np.ndarray, overrides: dict) -> np.ndarray:
        """Token-routing override sweep.

        A stuck balancer routes *every* arriving token to its stuck port
        (:meth:`repro.faults.mutator.StuckOverride.apply_counts`), and a
        pristine balancer drained from a fresh state lands on the
        quiescent counts — exactly the count sweep, shared verbatim.
        """
        return _COUNT.apply_overridden(net, x, overrides)


_COUNT = CountSemantics()
_SORT = SortSemantics()
_TOKEN = TokenSemantics()

_REGISTRY: dict[str, Semantics] = {s.name: s for s in (_COUNT, _SORT, _TOKEN)}


def get_semantics(name: str) -> Semantics:
    """The shared singleton for ``name`` (one of :data:`SEMANTICS`)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown semantics {name!r}; choose from {SEMANTICS}"
        ) from None
