"""Bit-sliced 0-1 evaluation: 64 boolean input vectors per uint64 word.

Every exhaustive correctness claim in this repo rests on the 0-1 principle
(paper §1): a comparator network sorts every input iff it sorts every 0-1
input, and on 0-1 inputs a ``p``-balancer's quiescent counting semantics
coincides with descending sorting — output ``j`` carries a token iff more
than ``j`` tokens entered.  Boolean vectors evaluated one int64 lane at a
time waste 63/64 of every word, so this module packs **64 input vectors per
``uint64`` word** (the SingeliSort trick) and evaluates whole batches with
branchless bitwise kernels:

* a width-2 compare-exchange is two ops — ``top = a | b``, ``bottom =
  a & b`` (descending: the OR carries the excess token);
* a width-``p`` balancer is an odd-even transposition sort over its ``p``
  word-rows (``p`` rounds of adjacent OR/AND exchanges), which on 0-1
  inputs reproduces the counting formula ``out[j] = ceil((t - j) / p)``
  exactly;
* :class:`BitPlan` reuses an :class:`~repro.core.plan.ExecutionPlan`'s
  segment tables and SSA slice-stores verbatim — only the word type and
  the per-segment kernel change, so the bit-sliced sweep inherits the flat
  plan's memory layout and its correctness tests.

Packing layout (``pack_zero_one``): a ``(B, w)`` 0-1 batch becomes a
``(w, ceil(B/64))`` uint64 array — wire-major, batch row ``n`` living in
bit ``n % 64`` of word ``n // 64``.  Inputs that are not exactly 0 or 1
raise :class:`NotZeroOneError` — silently masking high bits would turn a
caller's type error into a bogus verification verdict.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (plan imports us)
    from .network import Network
    from .plan import ExecutionPlan

__all__ = [
    "LANES",
    "NotZeroOneError",
    "pack_zero_one",
    "unpack_zero_one",
    "BitPlan",
    "evaluate_zero_one_packed",
]

#: Input vectors carried per uint64 word.
LANES = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class NotZeroOneError(ValueError):
    """An input handed to the bit-sliced backend was not exactly 0 or 1.

    One packed bit cannot represent any other value; masking high bits
    away (``x & 1``) would silently evaluate a *different* input and could
    certify a broken network.  The executor refuses instead.
    """


def _check_zero_one(x: np.ndarray) -> None:
    bad = (x != 0) & (x != 1)
    if bad.any():
        idx = tuple(int(i[0]) for i in np.nonzero(bad))
        raise NotZeroOneError(
            f"bit-sliced backend needs 0-1 inputs; got {x[idx]!r} at "
            f"position {idx} — evaluate non-boolean batches with "
            f"backend='int64'"
        )


def pack_zero_one(x: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack a ``(B, w)`` 0-1 batch into ``(w, ceil(B/64))`` uint64 words.

    Returns ``(packed, B)``.  Row ``n`` of the batch occupies bit
    ``n % 64`` of word ``n // 64`` on every wire; lanes past ``B`` in the
    final word are zero.  Raises :class:`NotZeroOneError` on any entry
    that is not exactly 0 or 1 (including negative values, 64, floats —
    nothing is masked).
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected a (B, w) batch, got shape {x.shape}")
    _check_zero_one(x)
    batch, width = x.shape
    nwords = max(1, -(-batch // LANES))
    # packbits(little) puts row n in bit n%8 of byte n//8; viewing 8 bytes
    # as one little-endian word extends that to bit n%64 of word n//64.
    col = np.packbits(x.T.astype(np.uint8), axis=1, bitorder="little")
    buf = np.zeros((width, nwords * 8), dtype=np.uint8)
    buf[:, : col.shape[1]] = col
    return buf.view("<u8").astype(np.uint64, copy=False), batch


def unpack_zero_one(packed: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_zero_one`: ``(w, nwords)`` words back to a
    ``(batch, w)`` int64 batch (byte-identical to the int64 executor's
    output dtype)."""
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError(f"expected (w, nwords) packed words, got shape {packed.shape}")
    width, nwords = packed.shape
    if not 0 <= batch <= nwords * LANES:
        raise ValueError(f"batch {batch} does not fit in {nwords} words")
    by = packed.astype("<u8", copy=False).view(np.uint8).reshape(width, nwords * 8)
    bits = np.unpackbits(by, axis=1, count=batch, bitorder="little")
    return bits.T.astype(np.int64)


def _transpose_sort(rows: np.ndarray, tmp: np.ndarray) -> None:
    """Odd-even transposition sort of ``p`` word-rows, descending, in place.

    ``rows`` is ``(p, k, nwords)``; each adjacent exchange is the bitwise
    compare-exchange (upper gets OR, lower gets AND).  ``p`` rounds suffice
    for ``p`` elements.  ``tmp`` must be a ``(k, nwords)`` scratch row —
    the AND is computed first so the in-place OR cannot clobber an operand.
    """
    p = rows.shape[0]
    for rnd in range(p):
        for i in range(rnd & 1, p - 1, 2):
            a, b = rows[i], rows[i + 1]
            np.bitwise_and(a, b, out=tmp)
            np.bitwise_or(a, b, out=a)
            b[...] = tmp


class BitPlan:
    """A bit-sliced view over an :class:`~repro.core.plan.ExecutionPlan`.

    Shares the plan's segment tables and SSA wire numbering; state is a
    ``(num_wires, nwords)`` uint64 array instead of ``(num_wires, batch)``
    int64.  Segment tables are precomputed as plain Python ints so the
    per-segment dispatch does no array indexing.
    """

    __slots__ = ("plan", "width", "num_wires", "segments", "output_idx")

    def __init__(self, plan: "ExecutionPlan") -> None:
        self.plan = plan
        self.width = plan.width
        self.num_wires = plan.num_wires
        self.output_idx = plan.output_idx
        self.segments = [
            (
                int(plan.seg_width[i]),
                int(plan.seg_count[i]),
                int(plan.seg_in_off[i]),
                int(plan.seg_out_base[i]),
                int(plan.seg_layer[i]),
            )
            for i in range(plan.num_segments)
        ]

    @property
    def max_gather(self) -> int:
        return max((p * k for p, k, _, _, _ in self.segments), default=0)

    @property
    def max_count(self) -> int:
        return max((k for _, k, _, _, _ in self.segments), default=0)

    def run_packed(
        self,
        packed: np.ndarray,
        state: np.ndarray,
        gather: np.ndarray,
        tmp: np.ndarray,
        layer_times: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evaluate ``(w, nwords)`` packed words into caller-owned scratch.

        Returns the packed output rows (a gather from ``state`` — a fresh
        ``(w, nwords)`` array, the only allocation).  ``layer_times``
        mirrors the int64 executor's per-layer timing hook.
        """
        plan = self.plan
        if packed.shape[0] != self.width:
            raise ValueError(f"expected ({self.width}, nwords) packed input, got {packed.shape}")
        state[plan.input_idx] = packed
        in_flat = plan.in_flat
        if layer_times is None:
            for p, k, off, ob, _ in self.segments:
                self._segment(state, gather, tmp, in_flat, p, k, off, ob)
        else:
            import time

            for p, k, off, ob, layer in self.segments:
                t0 = time.perf_counter()
                self._segment(state, gather, tmp, in_flat, p, k, off, ob)
                layer_times[layer] += time.perf_counter() - t0
        return state[self.output_idx].copy()

    @staticmethod
    def _segment(state, gather, tmp, in_flat, p: int, k: int, off: int, ob: int) -> None:
        size = p * k
        g = gather[:size]
        np.take(state, in_flat[off : off + size], axis=0, out=g)
        if p == 2:
            np.bitwise_or(g[:k], g[k:], out=state[ob : ob + k])
            np.bitwise_and(g[:k], g[k:], out=state[ob + k : ob + 2 * k])
            return
        _transpose_sort(g.reshape(p, k, -1), tmp[:k])
        state[ob : ob + size] = g


def evaluate_zero_one_packed(net: "Network", packed: np.ndarray) -> np.ndarray:
    """Evaluate packed 0-1 words through ``net``; returns packed outputs.

    Pristine networks run the pooled bit-sliced plan executor.  Networks
    carrying semantic fault overrides (:class:`repro.faults.FaultyNetwork`)
    take a per-balancer sweep in which an overridden balancer passes its
    inputs through unexchanged — exactly the value-semantics projection
    :func:`repro.sim.sort_sim.evaluate_comparators` applies, so the two
    paths agree bit for bit on every 0-1 input.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    if packed.ndim != 2 or packed.shape[0] != net.width:
        raise ValueError(f"expected ({net.width}, nwords) packed input, got {packed.shape}")
    overrides = getattr(net, "fault_overrides", None)
    if not overrides:
        from .plan import plan_executor

        return plan_executor(net, backend="bitsliced").run_packed(packed)
    nwords = packed.shape[1]
    state = np.zeros((net.num_wires, nwords), dtype=np.uint64)
    state[list(net.inputs)] = packed
    tmp = np.empty((1, nwords), dtype=np.uint64)
    for b in net.balancers:
        vals = state[list(b.inputs)]
        if b.index in overrides:
            state[list(b.outputs)] = vals  # broken comparator: no exchange
        else:
            _transpose_sort(vals[:, None, :], tmp)  # mutates vals in place
            state[list(b.outputs)] = vals
    return state[list(net.outputs)]
