"""Sequence predicates and matrix arrangements from Section 3.1 of the paper.

The paper works with sequences of natural numbers ``X = x_0, ..., x_{w-1}``
(token counts per wire for counting networks, or values per wire for sorting
networks).  This module implements, exactly as defined in Section 3.1:

* the **step property** (``0 <= x_i - x_j <= 1`` for all ``i < j``) and its
  *step point*,
* **k-smoothness** (``|x_i - x_j| <= k``),
* the **bitonic property** (1-smooth with at most two transitions),
* the **k-staircase property** on a family of sequences
  (``0 <= sum(X_i) - sum(X_j) <= k`` for all ``i < j``),
* the four matrix **arrangements** of a length ``r*c`` sequence (row major,
  reverse row major, column major, reverse column major), expressed as index
  permutations so they compose with the SSA wire lists used by the builders,
* strided subsequence extraction ``X[i, j] = x_i, x_{i+j}, x_{i+2j}, ...``.

Arrays of counts are always integer numpy arrays or plain Python sequences;
all predicates accept either.  Per the step-property convention used
throughout this package, step sequences are *non-increasing*: the upper wires
(small indices) carry the excess tokens.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_int_array",
    "is_step",
    "step_point",
    "is_smooth",
    "smoothness",
    "num_transitions",
    "is_bitonic",
    "is_staircase",
    "staircase_slack",
    "make_step",
    "random_step",
    "random_bitonic",
    "row_major",
    "reverse_row_major",
    "column_major",
    "reverse_column_major",
    "arrangement",
    "ARRANGEMENTS",
    "strided",
    "split_blocks",
]


def as_int_array(x: Iterable[int]) -> np.ndarray:
    """Return ``x`` as a 1-D ``int64`` numpy array (copying only if needed)."""
    arr = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D sequence, got shape {arr.shape}")
    return arr


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


def is_step(x: Iterable[int]) -> bool:
    """True iff ``x`` has the step property: ``0 <= x_i - x_j <= 1`` for i<j.

    Equivalently: ``x`` is non-increasing and ``x_0 - x_{w-1} <= 1``.
    The empty sequence and singletons trivially satisfy the property.
    """
    arr = as_int_array(x)
    if arr.size <= 1:
        return True
    diffs = arr[:-1] - arr[1:]
    return bool(np.all(diffs >= 0)) and int(arr[0] - arr[-1]) <= 1


def step_point(x: Iterable[int]) -> int:
    """Step point of a step sequence: the unique index ``i`` with
    ``x_i > x_{i+1}`` plus one — i.e. the first index holding the *lower*
    value — or 0 if all elements are equal.

    The paper defines the step point as "the unique index i such that
    x_i < x_{i+1}" for non-decreasing steps; with our non-increasing
    convention this is the boundary where the value drops.  Raises
    ``ValueError`` if ``x`` is not a step sequence.
    """
    arr = as_int_array(x)
    if not is_step(arr):
        raise ValueError("step_point requires a step sequence")
    if arr.size <= 1:
        return 0
    drops = np.nonzero(arr[:-1] > arr[1:])[0]
    if drops.size == 0:
        return 0
    return int(drops[0]) + 1


def smoothness(x: Iterable[int]) -> int:
    """Smallest ``k`` such that ``x`` is k-smooth (``max - min``)."""
    arr = as_int_array(x)
    if arr.size == 0:
        return 0
    return int(arr.max() - arr.min())


def is_smooth(x: Iterable[int], k: int) -> bool:
    """True iff ``x`` is k-smooth: ``|x_i - x_j| <= k`` for all i, j."""
    return smoothness(x) <= k


def num_transitions(x: Iterable[int]) -> int:
    """Number of transitions: adjacent pairs with different values."""
    arr = as_int_array(x)
    if arr.size <= 1:
        return 0
    return int(np.count_nonzero(arr[:-1] != arr[1:]))


def is_bitonic(x: Iterable[int]) -> bool:
    """True iff ``x`` has the bitonic property of Section 3.1:
    1-smooth with at most two transitions."""
    return is_smooth(x, 1) and num_transitions(x) <= 2


def staircase_slack(xs: Sequence[Iterable[int]]) -> tuple[int, int]:
    """Return ``(lo, hi)`` = min and max of ``sum(X_i) - sum(X_j)`` over i<j.

    ``xs`` satisfies the k-staircase property iff ``lo >= 0 and hi <= k``.
    """
    sums = [int(as_int_array(x).sum()) for x in xs]
    lo, hi = 0, 0
    for i in range(len(sums)):
        for j in range(i + 1, len(sums)):
            d = sums[i] - sums[j]
            lo = min(lo, d)
            hi = max(hi, d)
    return lo, hi


def is_staircase(xs: Sequence[Iterable[int]], k: int) -> bool:
    """True iff the family ``xs`` satisfies the k-staircase property:
    ``0 <= sum(X_i) - sum(X_j) <= k`` for all ``i < j``."""
    lo, hi = staircase_slack(xs)
    return lo >= 0 and hi <= k


# ---------------------------------------------------------------------------
# Constructors (used pervasively by tests and verification)
# ---------------------------------------------------------------------------


def make_step(width: int, total: int, base: int = 0) -> np.ndarray:
    """The unique step sequence of length ``width`` whose sum is
    ``total + base*width``: each wire gets ``base + ceil((total - i)/width)``.

    This is exactly the output-count vector of an ideal counting network of
    width ``width`` after ``total`` tokens.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    i = np.arange(width, dtype=np.int64)
    return base + (total - i + width - 1) // width


def random_step(width: int, rng: np.random.Generator, max_total: int = 100) -> np.ndarray:
    """A uniformly random step sequence of length ``width``."""
    total = int(rng.integers(0, max_total + 1))
    base = int(rng.integers(0, 4))
    return make_step(width, total, base)


def random_bitonic(width: int, rng: np.random.Generator) -> np.ndarray:
    """A random bitonic sequence (1-smooth, at most two transitions).

    Generated as a cyclic rotation of a step sequence, which always satisfies
    the bitonic property.
    """
    base = int(rng.integers(0, 4))
    total = int(rng.integers(0, width + 1))
    seq = make_step(width, total, base)
    shift = int(rng.integers(0, width))
    return np.roll(seq, shift)


# ---------------------------------------------------------------------------
# Matrix arrangements (Section 3.1, Figure 5)
# ---------------------------------------------------------------------------
#
# Each arrangement maps sequence index i to a (row, col) cell of an r x c
# matrix.  We expose them as permutations: ``perm[row*c + col] = i`` means the
# cell (row, col) holds sequence element x_i.  Applying a permutation to a
# wire list rearranges which wire sits at which matrix cell — free relabeling
# in the SSA model.


def row_major(r: int, c: int) -> np.ndarray:
    """Permutation placing x_i at row ``i // c``, column ``i % c``."""
    _check_dims(r, c)
    return np.arange(r * c, dtype=np.int64)


def reverse_row_major(r: int, c: int) -> np.ndarray:
    """Permutation placing x_i at row ``r - i//c - 1``, column ``c - i%c - 1``."""
    _check_dims(r, c)
    return np.arange(r * c, dtype=np.int64)[::-1].copy()


def column_major(r: int, c: int) -> np.ndarray:
    """Permutation placing x_i at row ``i % r``, column ``i // r``."""
    _check_dims(r, c)
    i = np.arange(r * c, dtype=np.int64)
    perm = np.empty(r * c, dtype=np.int64)
    perm[(i % r) * c + (i // r)] = i
    return perm


def reverse_column_major(r: int, c: int) -> np.ndarray:
    """Permutation placing x_i at row ``r - i%r - 1``, column ``c - i//r - 1``."""
    _check_dims(r, c)
    i = np.arange(r * c, dtype=np.int64)
    perm = np.empty(r * c, dtype=np.int64)
    perm[(r - (i % r) - 1) * c + (c - (i // r) - 1)] = i
    return perm


ARRANGEMENTS = {
    "row_major": row_major,
    "reverse_row_major": reverse_row_major,
    "column_major": column_major,
    "reverse_column_major": reverse_column_major,
}


def arrangement(name: str, r: int, c: int) -> np.ndarray:
    """Look up one of the four arrangements by name."""
    try:
        fn = ARRANGEMENTS[name]
    except KeyError:
        raise ValueError(f"unknown arrangement {name!r}; choose from {sorted(ARRANGEMENTS)}") from None
    return fn(r, c)


def _check_dims(r: int, c: int) -> None:
    if r <= 0 or c <= 0:
        raise ValueError(f"matrix dimensions must be positive, got {r}x{c}")


# ---------------------------------------------------------------------------
# Subsequence helpers
# ---------------------------------------------------------------------------


def strided(x: Sequence, start: int, stride: int) -> list:
    """The paper's ``X[i, j]`` subsequence: ``x_i, x_{i+j}, x_{i+2j}, ...``.

    Works on any Python sequence (wire-id lists included) and returns a list.
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    if not 0 <= start < stride:
        raise ValueError(f"start must satisfy 0 <= start < stride, got {start}, {stride}")
    return list(x[start::stride])


def split_blocks(x: Sequence, block: int) -> list[list]:
    """Split ``x`` into consecutive blocks of size ``block``."""
    if block <= 0:
        raise ValueError("block size must be positive")
    if len(x) % block != 0:
        raise ValueError(f"length {len(x)} is not a multiple of block size {block}")
    return [list(x[i : i + block]) for i in range(0, len(x), block)]
