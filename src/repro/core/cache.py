"""Persistent on-disk cache for constructed networks and execution plans.

Building ``K(2^11)`` takes hundreds of milliseconds of pure Python; the
result is fully determined by ``(family, factors, variant)`` and the code
that builds it.  This module caches both the constructed
:class:`~repro.core.network.Network` (as flat arrays) and its lowered
:class:`~repro.core.plan.ExecutionPlan` under ``.repro_cache/``:

* every entry is one ``.npz`` file written with :func:`np.savez` (flat
  int64 arrays — no pickling), listed in a single ``manifest.json``;
* keys combine the caller-supplied identity (``family``, ``factors``,
  ``variant``) with a **code-version hash** over the construction and
  lowering sources, so editing any of those modules silently invalidates
  every stale entry — no manual cache busting;
* corrupted entries (truncated npz, hand-edited manifest, wrong-shape
  arrays) are treated as misses, dropped, and recounted — the cache never
  propagates a bad artifact;
* hit/miss/store counters persist in the manifest (for ``repro cache
  stats``) and are mirrored into the obs registry when observability is on.

The cache root resolves, in order: the explicit ``root`` argument, the
``REPRO_CACHE_DIR`` environment variable, ``<repo root>/.repro_cache``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Callable, Sequence

import numpy as np

from ..obs import runtime as _obs
from .bitplan import BitPlan
from .network import Balancer, Network
from .plan import SEMANTICS, ExecutionPlan, lower_network

__all__ = [
    "code_version_hash",
    "PlanCache",
    "default_cache",
    "set_default_cache",
    "cached_plan",
    "cached_network",
]

MANIFEST_VERSION = 1

#: Sources whose content defines cached-artifact validity.  Editing any of
#: these changes every cache key, orphaning (not corrupting) old entries.
_HASHED_SOURCES = (
    "core/network.py",
    "core/compiled.py",
    "core/plan.py",
    "core/bitplan.py",
    "core/semantics.py",
    "networks/counting.py",
    "networks/staircase.py",
    "networks/two_merger.py",
    "networks/bitonic_converter.py",
    "networks/k_network.py",
    "networks/l_network.py",
    "networks/r_network.py",
    # The searched variant substitutes registry networks: its artifacts are
    # only valid for the registry contents that produced them.
    "search/registry.py",
    "search/seeds.py",
)

_code_hash: str | None = None


def code_version_hash() -> str:
    """Short hex digest of the construction/lowering source files."""
    global _code_hash
    if _code_hash is None:
        pkg = pathlib.Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for rel in _HASHED_SOURCES:
            p = pkg / rel
            h.update(rel.encode())
            try:
                h.update(p.read_bytes())
            except OSError:
                h.update(b"<missing>")
        _code_hash = h.hexdigest()[:16]
    return _code_hash


def _obs_count(name: str) -> None:
    if _obs.enabled:
        from ..obs.metrics import default_registry

        default_registry().counter(name).inc()


def _obs_trace(event: str, **fields) -> None:
    if _obs.enabled:
        from ..obs.tracer import default_tracer

        default_tracer().record(event, **fields)


def _network_arrays(net: Network) -> dict[str, np.ndarray]:
    """Flatten a network to np.savez-able arrays (vectorized, no pickling)."""
    widths = np.array([b.width for b in net.balancers], dtype=np.int64)
    in_concat = np.array(
        [w for b in net.balancers for w in b.inputs], dtype=np.int64
    )
    out_concat = np.array(
        [w for b in net.balancers for w in b.outputs], dtype=np.int64
    )
    return {
        "widths": widths,
        "in_concat": in_concat,
        "out_concat": out_concat,
        "net_inputs": np.array(net.inputs, dtype=np.int64),
        "net_outputs": np.array(net.outputs, dtype=np.int64),
        "net_scalars": np.array([net.num_wires], dtype=np.int64),
    }


def _network_from_arrays(arrays, name: str) -> Network:
    widths = np.asarray(arrays["widths"], dtype=np.int64)
    in_concat = [int(w) for w in np.asarray(arrays["in_concat"])]
    out_concat = [int(w) for w in np.asarray(arrays["out_concat"])]
    bounds = np.concatenate(([0], np.cumsum(widths)))
    if bounds[-1] != len(in_concat) or bounds[-1] != len(out_concat):
        raise ValueError("balancer wire arrays do not match widths")
    balancers = [
        Balancer(
            i,
            tuple(in_concat[bounds[i] : bounds[i + 1]]),
            tuple(out_concat[bounds[i] : bounds[i + 1]]),
        )
        for i in range(len(widths))
    ]
    return Network(
        inputs=[int(w) for w in np.asarray(arrays["net_inputs"])],
        outputs=[int(w) for w in np.asarray(arrays["net_outputs"])],
        balancers=balancers,
        num_wires=int(np.asarray(arrays["net_scalars"])[0]),
        name=name,
    )


class PlanCache:
    """On-disk artifact cache with a JSON manifest and persistent counters."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR")
        if root is None:
            from ..obs.export import repo_root

            root = repo_root() / ".repro_cache"
        self.root = pathlib.Path(root)
        self._manifest: dict | None = None

    # -- manifest -----------------------------------------------------------

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / "manifest.json"

    def _load_manifest(self) -> dict:
        if self._manifest is not None:
            return self._manifest
        empty = {
            "version": MANIFEST_VERSION,
            "entries": {},
            "counters": {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0},
        }
        try:
            data = json.loads(self.manifest_path.read_text())
            if (
                not isinstance(data, dict)
                or int(data.get("version", -1)) != MANIFEST_VERSION
                or not isinstance(data.get("entries"), dict)
            ):
                raise ValueError("bad manifest shape")
            data.setdefault(
                "counters", {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
            )
        except FileNotFoundError:
            data = empty
        except (ValueError, OSError, json.JSONDecodeError):
            # A mangled manifest orphans the .npz files; they are re-stored
            # on the next miss.  Never raise out of cache plumbing.
            data = empty
            data["counters"]["corrupt"] += 1
        self._manifest = data
        return data

    def _write_manifest(self) -> None:
        if self._manifest is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self._manifest, indent=1, sort_keys=True))
        tmp.replace(self.manifest_path)

    def _count(self, which: str, obs_name: str) -> None:
        m = self._load_manifest()
        m["counters"][which] = int(m["counters"].get(which, 0)) + 1
        _obs_count(obs_name)

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def entry_key(
        kind: str,
        family: str,
        factors: Sequence[int],
        variant: str | None = None,
    ) -> str:
        """Filesystem-safe cache key including the code-version hash."""
        fac = "x".join(str(int(f)) for f in factors)
        var = variant or "default"
        return f"{kind}-{family}-{fac}-{var}-{code_version_hash()}"

    # -- generic npz entry store/load ---------------------------------------

    def _get(self, key: str) -> tuple[dict, dict] | None:
        """Load the arrays + meta for ``key``; None (and drop) on any defect."""
        m = self._load_manifest()
        entry = m["entries"].get(key)
        if entry is None:
            self._count("misses", "cache.misses")
            self._write_manifest()
            _obs_trace("cache_miss", key=key)
            return None
        path = self.root / entry["file"]
        try:
            with np.load(path) as npz:
                arrays = {k: npz[k] for k in npz.files}
        except Exception:
            # Truncated/garbled npz: drop the entry and report a miss.
            self._drop_entry(key, path)
            self._count("corrupt", "cache.corrupt")
            self._count("misses", "cache.misses")
            self._write_manifest()
            _obs_trace("cache_corrupt", key=key)
            return None
        self._count("hits", "cache.hits")
        self._write_manifest()
        _obs_trace("cache_hit", key=key, bytes=entry.get("bytes"))
        return arrays, entry

    def _put(self, key: str, arrays: dict, meta: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{key}.npz"
        tmp = self.root / f"{key}.npz.tmp"
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        tmp.replace(path)
        m = self._load_manifest()
        m["entries"][key] = {
            "file": path.name,
            "bytes": path.stat().st_size,
            "meta": meta,
        }
        self._count("stores", "cache.stores")
        self._write_manifest()
        _obs_trace("cache_store", key=key, bytes=m["entries"][key]["bytes"])

    def _drop_entry(self, key: str, path: pathlib.Path) -> None:
        self._load_manifest()["entries"].pop(key, None)
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass

    # -- plans --------------------------------------------------------------

    @staticmethod
    def _plan_kind(backend: str, semantics: str = "count") -> str:
        """Artifact kind per backend and semantics: bit-sliced plans are
        stored (and therefore invalidated, counted, and listed) separately
        from int64 plans, and non-count semantics get a ``.{semantics}``
        kind suffix — both are part of the artifact's identity.  (The
        segment tables are semantics-independent today, but a key that
        names what produced it keeps distinct eviction/stats accounting and
        room for semantics-specialized lowering.)"""
        if backend == "int64":
            kind = "plan"
        elif backend == "bitsliced":
            kind = "bitplan"
        else:
            raise ValueError(f"unknown plan backend {backend!r}")
        if semantics not in SEMANTICS:
            raise ValueError(f"unknown semantics {semantics!r}; choose from {SEMANTICS}")
        return kind if semantics == "count" else f"{kind}.{semantics}"

    def get_plan(
        self,
        family: str,
        factors: Sequence[int],
        variant: str | None = None,
        backend: str = "int64",
        semantics: str = "count",
    ) -> ExecutionPlan | BitPlan | None:
        key = self.entry_key(self._plan_kind(backend, semantics), family, factors, variant)
        loaded = self._get(key)
        if loaded is None:
            return None
        arrays, entry = loaded
        try:
            plan = ExecutionPlan.from_arrays(
                arrays, name=entry.get("meta", {}).get("name", key)
            )
        except (ValueError, KeyError):
            self._drop_entry(key, self.root / entry["file"])
            self._count("corrupt", "cache.corrupt")
            self._write_manifest()
            return None
        return BitPlan(plan) if backend == "bitsliced" else plan

    def put_plan(
        self,
        family: str,
        factors: Sequence[int],
        plan: ExecutionPlan | BitPlan,
        variant: str | None = None,
        backend: str = "int64",
        semantics: str = "count",
    ) -> None:
        key = self.entry_key(self._plan_kind(backend, semantics), family, factors, variant)
        if isinstance(plan, BitPlan):
            plan = plan.plan
        meta = {
            "name": plan.name,
            "width": plan.width,
            "depth": plan.depth,
            "size": plan.size,
            "variant": variant or "default",
            "backend": backend,
            "semantics": semantics,
        }
        self._put(key, plan.to_arrays(), meta)

    # -- networks -----------------------------------------------------------

    def get_network(
        self, family: str, factors: Sequence[int], variant: str | None = None
    ) -> Network | None:
        key = self.entry_key("net", family, factors, variant)
        loaded = self._get(key)
        if loaded is None:
            return None
        arrays, entry = loaded
        try:
            return _network_from_arrays(
                arrays, name=entry.get("meta", {}).get("name", key)
            )
        except (ValueError, KeyError):
            self._drop_entry(key, self.root / entry["file"])
            self._count("corrupt", "cache.corrupt")
            self._write_manifest()
            return None

    def put_network(
        self,
        family: str,
        factors: Sequence[int],
        net: Network,
        variant: str | None = None,
    ) -> None:
        key = self.entry_key("net", family, factors, variant)
        meta = {
            "name": net.name,
            "width": net.width,
            "depth": net.depth,
            "size": net.size,
            "variant": variant or "default",
        }
        self._put(key, _network_arrays(net), meta)

    # -- maintenance --------------------------------------------------------

    def stats(self) -> dict:
        """Entry count, bytes on disk, the persistent counters, a
        per-variant entry breakdown (searched-base plans never collide with
        stock plans — the variant is part of every key and recorded in every
        entry's meta), and per-backend / per-semantics breakdowns of plan
        artifacts (``plan-*`` int64 vs ``bitplan-*`` bit-sliced;
        ``plan.sort-*`` / ``plan.token-*`` non-count semantics)."""
        m = self._load_manifest()
        entries = m["entries"]
        variants: dict[str, int] = {}
        backends: dict[str, int] = {}
        semantics: dict[str, int] = {}
        for key, e in entries.items():
            meta = e.get("meta", {})
            v = str(meta.get("variant", "default"))
            variants[v] = variants.get(v, 0) + 1
            if not str(key).startswith("net-"):
                b = str(meta.get("backend", "int64"))
                backends[b] = backends.get(b, 0) + 1
                s = str(meta.get("semantics", "count"))
                semantics[s] = semantics.get(s, 0) + 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": int(sum(int(e.get("bytes", 0)) for e in entries.values())),
            "variants": dict(sorted(variants.items())),
            "backends": dict(sorted(backends.items())),
            "semantics": dict(sorted(semantics.items())),
            **{k: int(v) for k, v in m["counters"].items()},
        }

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for p in self.root.iterdir():
                if p.suffix in (".npz", ".json", ".tmp") or p.name.endswith(
                    (".npz.tmp", ".json.tmp")
                ):
                    try:
                        p.unlink()
                        removed += 1
                    except OSError:
                        pass
        self._manifest = None
        return removed


_default_cache: PlanCache | None = None


def default_cache() -> PlanCache:
    """The process-wide cache instance (created on first use)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = PlanCache()
    return _default_cache


def set_default_cache(cache: PlanCache | None) -> PlanCache | None:
    """Swap the process-wide cache (tests, custom roots); returns previous."""
    global _default_cache
    prev = _default_cache
    _default_cache = cache
    return prev


def cached_plan(
    family: str,
    factors: Sequence[int],
    builder: Callable[[], Network],
    *,
    variant: str | None = None,
    backend: str = "int64",
    semantics: str = "count",
    cache: PlanCache | None = None,
) -> ExecutionPlan | BitPlan:
    """The execution plan for ``(family, factors, variant, backend,
    semantics)``, from disk when possible.

    On a hit the network is never materialized — evaluation needs only the
    plan.  On a miss ``builder()`` runs once and **both** artifacts (the
    network's flat arrays and the lowered plan, tagged with ``backend`` and
    ``semantics``) are stored for next time.  ``backend="bitsliced"``
    returns a :class:`~repro.core.bitplan.BitPlan` over the same arrays.
    """
    cache = cache or default_cache()
    plan = cache.get_plan(family, factors, variant, backend=backend, semantics=semantics)
    if plan is not None:
        return plan
    net = builder()
    plan = lower_network(net)
    cache.put_network(family, factors, net, variant)
    cache.put_plan(family, factors, plan, variant, backend=backend, semantics=semantics)
    if backend == "bitsliced":
        return BitPlan(plan)
    return plan


def cached_network(
    family: str,
    factors: Sequence[int],
    builder: Callable[[], Network],
    *,
    variant: str | None = None,
    cache: PlanCache | None = None,
) -> Network:
    """The constructed network for ``(family, factors, variant)``, cached."""
    cache = cache or default_cache()
    net = cache.get_network(family, factors, variant)
    if net is not None:
        return net
    net = builder()
    cache.put_network(family, factors, net, variant)
    cache.put_plan(family, factors, lower_network(net), variant)
    return net
