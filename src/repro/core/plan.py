"""Flat execution plans: the network evaluation engine.

:mod:`repro.core.compiled` groups balancers into *width groups per layer*
but leaves each group as a small Python object holding ``(k, p)`` index
matrices, and each evaluation allocates a fresh ``(num_wires, batch)``
state array.  At the widths the paper targets (thousands of wires, ~10^5
balancers) that Python-object sweep and the per-call allocation dominate
wall-clock — the interpreter, not the network, sets the speed.

This module lowers a :class:`~repro.core.compiled.CompiledNetwork` one step
further, to an :class:`ExecutionPlan`:

* all per-group index matrices are concatenated into **one contiguous
  int64 array** (``in_flat``) with per-segment offset tables
  (``seg_in_off`` / ``seg_out_base`` / ``seg_width`` / ``seg_count``), one
  segment per ``(layer, width)`` pair;
* SSA wire ids are **renumbered** so that every segment's output wires form
  one contiguous block, position-major.  Writing a layer's outputs is then a
  plain slice store (a memcpy), not a fancy scatter — only the gather side
  pays for indexed addressing;
* the per-balancer arithmetic is a pluggable :mod:`~repro.core.semantics`
  kernel — quiescent count transfer, descending compare-exchange, or
  batched mod-p token routing — so one executor serves all three of the
  paper's isomorphic network views (the dominant width-2 case gets a
  dedicated branchless kernel in every semantics);
* a :class:`PlanExecutor` owns a reusable scratch-buffer pool (shared
  across the semantics of one network/backend pair) so steady-state
  evaluation allocates **nothing** per call, and optionally shards large
  batches over a process pool (``run_parallel``).

Lowering results are memoized per :class:`~repro.core.network.Network`
instance (``WeakKeyDictionary``), mirroring :func:`compile_network`; plans
also serialize to/from flat arrays (:meth:`ExecutionPlan.to_arrays`) so
:mod:`repro.core.cache` can persist them with ``np.savez``.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field

import numpy as np

from ..obs import runtime as _obs
from .bitplan import LANES, BitPlan, pack_zero_one, unpack_zero_one
from .compiled import compile_network
from .network import Network
from .semantics import SEMANTICS, get_semantics

__all__ = [
    "BACKENDS",
    "SEMANTICS",
    "ExecutionPlan",
    "PlanExecutor",
    "lower_network",
    "plan_executor",
]

#: Execution backends a :class:`PlanExecutor` can run.
BACKENDS = ("int64", "bitsliced")

#: Arrays that round-trip a plan through ``np.savez`` (see ``to_arrays``).
_ARRAY_FIELDS = (
    "input_idx",
    "output_idx",
    "in_flat",
    "seg_layer",
    "seg_width",
    "seg_count",
    "seg_in_off",
    "seg_out_base",
)


@dataclass(frozen=True)
class ExecutionPlan:
    """A network lowered to flat index arrays plus offset tables.

    One *segment* holds every balancer of one width within one layer.
    Segment ``s`` reads the ``seg_width[s] * seg_count[s]`` wire ids at
    ``in_flat[seg_in_off[s] : seg_in_off[s+1]]`` (position-major: all the
    position-0 inputs first, then all position-1, ...) and writes the
    contiguous wire block starting at ``seg_out_base[s]`` in the same
    position-major order.  Wire ids are plan-local: inputs are renumbered to
    ``0..width-1`` and every segment's outputs are consecutive, so the only
    indexed access during evaluation is the input gather.
    """

    width: int
    num_wires: int
    size: int
    depth: int
    name: str
    input_idx: np.ndarray
    output_idx: np.ndarray
    in_flat: np.ndarray
    seg_layer: np.ndarray
    seg_width: np.ndarray
    seg_count: np.ndarray
    seg_in_off: np.ndarray
    seg_out_base: np.ndarray

    @property
    def num_segments(self) -> int:
        return int(self.seg_width.shape[0])

    def layer_segment_counts(self) -> np.ndarray:
        """Segments per layer (length ``depth``); used by instrumentation."""
        counts = np.zeros(max(self.depth, 1), dtype=np.int64)
        for li in self.seg_layer:
            counts[int(li)] += 1
        return counts

    @property
    def nbytes(self) -> int:
        """Total bytes of the plan's index arrays."""
        return int(sum(getattr(self, f).nbytes for f in _ARRAY_FIELDS))

    # -- serialization ------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Flat array dict for ``np.savez`` (scalars as 0-d arrays)."""
        out = {f: getattr(self, f) for f in _ARRAY_FIELDS}
        out["scalars"] = np.array(
            [self.width, self.num_wires, self.size, self.depth], dtype=np.int64
        )
        return out

    @classmethod
    def from_arrays(cls, arrays, name: str = "plan") -> "ExecutionPlan":
        """Rebuild a plan written by :meth:`to_arrays` (e.g. an ``NpzFile``)."""
        scalars = np.asarray(arrays["scalars"], dtype=np.int64)
        if scalars.shape != (4,):
            raise ValueError(f"bad plan scalars shape {scalars.shape}")
        kwargs = {
            f: np.ascontiguousarray(np.asarray(arrays[f], dtype=np.int64))
            for f in _ARRAY_FIELDS
        }
        plan = cls(
            width=int(scalars[0]),
            num_wires=int(scalars[1]),
            size=int(scalars[2]),
            depth=int(scalars[3]),
            name=name,
            **kwargs,
        )
        plan._validate()
        return plan

    def _validate(self) -> None:
        """Structural sanity for deserialized plans (corrupted-cache guard)."""
        w = self.width
        if w < 1 or self.num_wires < w:
            raise ValueError(f"bad plan dimensions width={w} num_wires={self.num_wires}")
        if self.input_idx.shape != (w,) or self.output_idx.shape != (w,):
            raise ValueError("plan input/output index length != width")
        n = self.num_segments
        for f in ("seg_layer", "seg_width", "seg_count", "seg_out_base"):
            if getattr(self, f).shape != (n,):
                raise ValueError(f"plan segment table {f} has wrong length")
        if self.seg_in_off.shape != (n + 1,):
            raise ValueError("seg_in_off must have num_segments + 1 entries")
        sizes = self.seg_width * self.seg_count
        if n and int(self.seg_in_off[-1]) != int(sizes.sum()):
            raise ValueError("seg_in_off does not cover in_flat")
        if self.in_flat.shape != (int(sizes.sum()),):
            raise ValueError("in_flat length != sum of segment sizes")
        for arr in (self.input_idx, self.output_idx, self.in_flat):
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.num_wires):
                raise ValueError("plan wire id out of range")


def lower_plan(net: Network) -> ExecutionPlan:
    """Lower ``net`` to a fresh :class:`ExecutionPlan` (no memoization)."""
    comp = compile_network(net)
    remap = np.full(comp.num_wires, -1, dtype=np.int64)
    remap[comp.input_idx] = np.arange(comp.width, dtype=np.int64)
    next_wire = comp.width

    in_parts: list[np.ndarray] = []
    seg_layer: list[int] = []
    seg_width: list[int] = []
    seg_count: list[int] = []
    seg_out_base: list[int] = []
    for li, layer in enumerate(comp.layers):
        for g in layer:
            k, p = g.count, g.width
            # Position-major: column j of the (k, p) matrices is contiguous.
            in_parts.append(remap[np.ascontiguousarray(g.in_idx.T).ravel()])
            remap[np.ascontiguousarray(g.out_idx.T).ravel()] = np.arange(
                next_wire, next_wire + p * k, dtype=np.int64
            )
            seg_layer.append(li)
            seg_width.append(p)
            seg_count.append(k)
            seg_out_base.append(next_wire)
            next_wire += p * k

    sizes = [a.shape[0] for a in in_parts]
    plan = ExecutionPlan(
        width=comp.width,
        num_wires=next_wire,
        size=sum(g.count for layer in comp.layers for g in layer),
        depth=comp.depth,
        name=net.name,
        input_idx=np.arange(comp.width, dtype=np.int64),
        output_idx=np.ascontiguousarray(remap[comp.output_idx]),
        in_flat=(
            np.concatenate(in_parts) if in_parts else np.empty(0, dtype=np.int64)
        ),
        seg_layer=np.array(seg_layer, dtype=np.int64),
        seg_width=np.array(seg_width, dtype=np.int64),
        seg_count=np.array(seg_count, dtype=np.int64),
        seg_in_off=np.concatenate(([0], np.cumsum(sizes))).astype(np.int64),
        seg_out_base=np.array(seg_out_base, dtype=np.int64),
    )
    return plan


_plan_cache: "weakref.WeakKeyDictionary[Network, ExecutionPlan]" = weakref.WeakKeyDictionary()
_executor_cache: "weakref.WeakKeyDictionary[Network, dict[tuple[str, str], PlanExecutor]]" = (
    weakref.WeakKeyDictionary()
)


def lower_network(net: Network) -> ExecutionPlan:
    """Lower (and memoize per network instance) ``net`` to a flat plan."""
    cached = _plan_cache.get(net)
    if cached is not None:
        if _obs.enabled:
            from ..obs.metrics import default_registry

            default_registry().counter("core.plan_cache_hits").inc()
        return cached
    t0 = time.perf_counter()
    plan = lower_plan(net)
    _plan_cache[net] = plan
    if _obs.enabled:
        from ..obs.metrics import DEFAULT_TIME_BUCKETS, default_registry
        from ..obs.tracer import default_tracer

        dur = time.perf_counter() - t0
        reg = default_registry()
        reg.counter("core.plan_lowerings").inc()
        reg.histogram("core.plan_lower_seconds", DEFAULT_TIME_BUCKETS).observe(dur)
        default_tracer().record(
            "plan_lower",
            network=net.name,
            segments=plan.num_segments,
            balancers=plan.size,
            dur_s=round(dur, 9),
        )
    return plan


def plan_executor(
    net: Network, backend: str = "int64", semantics: str = "count"
) -> "PlanExecutor":
    """The long-lived, scratch-pooled executor for ``net`` (memoized).

    One executor per ``(network, backend, semantics)`` triple; all share
    the same memoized :class:`ExecutionPlan`, and the executors of one
    ``(network, backend)`` pair share one LRU scratch-buffer pool — the
    count, sort, and token views of a network reuse each other's warm
    buffers instead of tripling the steady-state footprint."""
    per_net = _executor_cache.get(net)
    if per_net is None:
        per_net = {}
        _executor_cache[net] = per_net
    key = (backend, semantics)
    ex = per_net.get(key)
    if ex is None:
        # Adopt the scratch pool of a sibling semantics on the same backend.
        pool = next(
            (e.pool for (b, _), e in per_net.items() if b == backend), None
        )
        ex = PlanExecutor(lower_network(net), backend=backend, semantics=semantics, pool=pool)
        per_net[key] = ex
    return ex


class _Scratch:
    """One ``(batch, dtype)``'s worth of reusable evaluation buffers."""

    __slots__ = ("state", "gather", "totals", "numeric", "last_used")

    def __init__(self, plan: ExecutionPlan, batch: int, dtype: np.dtype) -> None:
        sizes = plan.seg_width * plan.seg_count
        max_flat = int(sizes.max()) if sizes.size else 0
        max_count = int(plan.seg_count.max()) if plan.seg_count.size else 0
        # No zero-init needed: every wire read is either a network input
        # (written from x) or a segment output (written before any reader,
        # by topological layer order).
        self.state = np.empty((plan.num_wires, batch), dtype=dtype)
        self.gather = np.empty((max_flat, batch), dtype=dtype)
        self.totals = np.empty((max_count, batch), dtype=dtype)
        # Whether the branchless min/max width-2 kernel applies (sort
        # semantics falls back to the generic sort kernel for e.g. str_).
        self.numeric = dtype.kind in "biufc"
        self.last_used = 0


class _BitScratch:
    """One word-count's worth of reusable bit-sliced buffers (uint64)."""

    __slots__ = ("state", "gather", "tmp", "last_used")

    def __init__(self, bitplan: BitPlan, nwords: int) -> None:
        self.state = np.empty((bitplan.num_wires, nwords), dtype=np.uint64)
        self.gather = np.empty((bitplan.max_gather, nwords), dtype=np.uint64)
        self.tmp = np.empty((bitplan.max_count, nwords), dtype=np.uint64)
        self.last_used = 0


class _ScratchPool:
    """The LRU scratch-buffer pool, shareable between executors.

    Keys are ``(batch, dtype)`` for int64/typed scratch and word counts
    for bit-sliced scratch.  ``plan_executor`` hands one pool to every
    semantics of a ``(network, backend)`` pair, so e.g. the count and
    sort executors of one served network reuse the same warm buffers.
    ``buffer_allocs`` / ``buffer_reuses`` count pool misses/hits; they
    are plain attributes (always maintained) and mirrored into the obs
    registry when observability is enabled.
    """

    __slots__ = ("max_pooled", "buffer_allocs", "buffer_reuses", "_pool", "_bit_pool", "_clock")

    def __init__(self, max_pooled: int = 4) -> None:
        self.max_pooled = int(max_pooled)
        self.buffer_allocs = 0
        self.buffer_reuses = 0
        self._pool: dict[tuple[int, str], _Scratch] = {}
        self._bit_pool: dict[int, _BitScratch] = {}
        self._clock = 0

    def _count_hit_miss(self, hit: bool) -> None:
        if hit:
            self.buffer_reuses += 1
        else:
            self.buffer_allocs += 1
        if _obs.enabled:
            from ..obs.metrics import default_registry

            name = "plan.buffer_reuses" if hit else "plan.buffer_allocs"
            default_registry().counter(name).inc()

    def scratch(self, plan: ExecutionPlan, batch: int, dtype: np.dtype) -> _Scratch:
        self._clock += 1
        key = (batch, dtype.str)
        s = self._pool.get(key)
        if s is None:
            if len(self._pool) >= self.max_pooled:
                evict = min(self._pool, key=lambda k: self._pool[k].last_used)
                del self._pool[evict]
            s = _Scratch(plan, batch, dtype)
            self._pool[key] = s
        self._count_hit_miss(hit=s.last_used > 0)
        s.last_used = self._clock
        return s

    def bit_scratch(self, bitplan: BitPlan, nwords: int) -> _BitScratch:
        self._clock += 1
        s = self._bit_pool.get(nwords)
        if s is None:
            if len(self._bit_pool) >= self.max_pooled:
                evict = min(self._bit_pool, key=lambda n: self._bit_pool[n].last_used)
                del self._bit_pool[evict]
            s = _BitScratch(bitplan, nwords)
            self._bit_pool[nwords] = s
        self._count_hit_miss(hit=s.last_used > 0)
        s.last_used = self._clock
        return s


class PlanExecutor:
    """Evaluates an :class:`ExecutionPlan` with zero steady-state allocation.

    Scratch buffers are pooled per batch size (a handful of distinct batch
    sizes in practice — the serving path always evaluates one step vector);
    repeated calls with a seen batch size allocate nothing.  The pool keeps
    at most ``max_pooled`` batch sizes, evicting least-recently-used.

    ``buffer_allocs`` / ``buffer_reuses`` count pool misses/hits; they are
    plain attributes (always maintained) and are mirrored into the obs
    registry when observability is enabled.

    ``backend="bitsliced"`` evaluates through a :class:`BitPlan` instead:
    :meth:`run` packs each ``(B, w)`` 0-1 batch into uint64 words (64 rows
    per word), sweeps the same segment tables with bitwise kernels, and
    unpacks — byte-identical to the int64 path on 0-1 inputs, and a
    :class:`~repro.core.bitplan.NotZeroOneError` on anything else.  The
    packed form is also exposed directly via :meth:`run_packed`.  On 0-1
    inputs the counting transfer and the descending compare-exchange
    coincide (OR on top, AND below), so the bit-sliced backend serves both
    ``count`` and ``sort`` semantics with the same kernels; ``token``
    semantics is rejected (balancer state is a count, not a bit).
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        max_pooled: int = 4,
        backend: str = "int64",
        semantics: str = "count",
        pool: _ScratchPool | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if backend == "bitsliced" and semantics == "token":
            raise ValueError(
                "the bitsliced backend packs wires into single bits and cannot "
                "hold token-semantics balancer state; use backend='int64'"
            )
        self.plan = plan
        self.backend = backend
        self.semantics = get_semantics(semantics)
        self.pool = pool if pool is not None else _ScratchPool(max_pooled)
        self.batches = 0
        self._bitplan = BitPlan(plan) if backend == "bitsliced" else None
        self._workers_pool = None
        self._workers_n = 0

    # -- scratch pool -------------------------------------------------------

    @property
    def max_pooled(self) -> int:
        return self.pool.max_pooled

    @property
    def buffer_allocs(self) -> int:
        return self.pool.buffer_allocs

    @property
    def buffer_reuses(self) -> int:
        return self.pool.buffer_reuses

    def scratch_stats(self) -> dict:
        """Pool accounting: sizes held, allocs, reuses, batches run."""
        return {
            "pooled_batch_sizes": sorted({b for b, _ in self.pool._pool})
            + sorted(self.pool._bit_pool),
            "buffer_allocs": self.pool.buffer_allocs,
            "buffer_reuses": self.pool.buffer_reuses,
            "batches": self.batches,
            "backend": self.backend,
            "semantics": self.semantics.name,
        }

    # -- evaluation ---------------------------------------------------------

    def run(self, x: np.ndarray, layer_times: np.ndarray | None = None) -> np.ndarray:
        """Evaluate a ``(B, width)`` int64 batch of non-negative counts.

        Returns a fresh ``(B, width)`` output array (the only allocation in
        steady state).  When ``layer_times`` (a float64 array of length
        ``depth``) is given, per-layer wall-clock seconds are accumulated
        into it; the arithmetic is identical either way.
        """
        if not _obs.enabled:
            return self._run_impl(x, layer_times)
        from ..obs.spans import default_span_recorder

        rec = default_span_recorder()
        parent = rec.current_batch
        span = rec.start(
            "executor",
            parent_id=None if parent is None else parent.span_id,
            plan=self.plan.name,
            backend=self.backend,
            semantics=self.semantics.name,
            run=self.batches,
            rows=int(x.shape[0]) if x.ndim == 2 else None,
        )
        if parent is not None:
            # Bidirectional linkage: the batch span names the executor run
            # that evaluated it, and the executor span points back up.
            parent.fields["executor_run"] = span.span_id
        try:
            out = self._run_impl(x, layer_times)
        except Exception:
            rec.finish(span, "error")
            raise
        rec.finish(span, "ok")
        return out

    def _run_impl(self, x: np.ndarray, layer_times: np.ndarray | None = None) -> np.ndarray:
        plan = self.plan
        if x.ndim != 2 or x.shape[1] != plan.width:
            raise ValueError(f"expected input shape (B, {plan.width}), got {x.shape}")
        if self.backend == "bitsliced":
            # Raises NotZeroOneError on anything a bit cannot hold.
            packed, batch = pack_zero_one(x)
            out = self._run_packed_impl(packed, layer_times)
            return unpack_zero_one(out, batch)
        sem = self.semantics
        x = sem.prepare(x)
        batch = x.shape[0]
        self.batches += 1
        s = self.pool.scratch(plan, batch, x.dtype)
        state = s.state
        state[plan.input_idx] = x.T

        segment = sem.segment
        seg_width = plan.seg_width
        seg_count = plan.seg_count
        seg_in_off = plan.seg_in_off
        seg_out_base = plan.seg_out_base
        in_flat = plan.in_flat
        if layer_times is None:
            for i in range(plan.num_segments):
                segment(
                    state, s, in_flat,
                    int(seg_width[i]), int(seg_count[i]),
                    int(seg_in_off[i]), int(seg_out_base[i]),
                )
        else:
            seg_layer = plan.seg_layer
            for i in range(plan.num_segments):
                t0 = time.perf_counter()
                segment(
                    state, s, in_flat,
                    int(seg_width[i]), int(seg_count[i]),
                    int(seg_in_off[i]), int(seg_out_base[i]),
                )
                layer_times[int(seg_layer[i])] += time.perf_counter() - t0
        return state[plan.output_idx].T.copy()

    # -- bit-sliced evaluation ----------------------------------------------

    def run_packed(
        self, packed: np.ndarray, layer_times: np.ndarray | None = None
    ) -> np.ndarray:
        """Evaluate pre-packed ``(w, nwords)`` uint64 words (64 0-1 input
        vectors per word; see :func:`~repro.core.bitplan.pack_zero_one`).

        Only valid on the ``bitsliced`` backend.  Returns the packed
        ``(w, nwords)`` output words; exhaustive sweeps stay packed end to
        end and never pay the unpack."""
        if self.backend != "bitsliced":
            raise ValueError("run_packed needs PlanExecutor(backend='bitsliced')")
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        if packed.ndim != 2 or packed.shape[0] != self.plan.width:
            raise ValueError(
                f"expected packed shape ({self.plan.width}, nwords), got {packed.shape}"
            )
        return self._run_packed_impl(packed, layer_times)

    def _run_packed_impl(
        self, packed: np.ndarray, layer_times: np.ndarray | None = None
    ) -> np.ndarray:
        self.batches += 1
        s = self.pool.bit_scratch(self._bitplan, packed.shape[1])
        return self._bitplan.run_packed(
            packed, s.state, s.gather, s.tmp, layer_times=layer_times
        )

    # -- parallel batch evaluation ------------------------------------------

    def run_parallel(self, x: np.ndarray, workers: int) -> np.ndarray:
        """Shard a large batch row-wise over a process pool sharing the plan.

        Falls back to the serial path when ``workers <= 1``, the batch is
        too small to shard, or process pools are unavailable.  Results are
        byte-identical to :meth:`run` — rows are independent.
        """
        workers = int(workers)
        batch = x.shape[0]
        # Worker processes rebuild int64 executors from the plan arrays;
        # bit-sliced batches are cheap enough that sharding never pays.
        if workers <= 1 or batch < 2 * workers or self.backend != "int64":
            return self.run(x)
        pool = self._ensure_pool(workers)
        if pool is None:
            return self.run(x)
        x = np.ascontiguousarray(x, dtype=np.int64)
        shards = np.array_split(x, workers)
        if _obs.enabled:
            from ..obs.metrics import default_registry

            reg = default_registry()
            reg.counter("plan.parallel_batches").inc()
            reg.counter("plan.parallel_shards").inc(len(shards))
        outs = list(pool.map(_eval_shard, shards))
        return np.concatenate(outs, axis=0)

    def _ensure_pool(self, workers: int):
        """Lazily build (or rebuild on a different worker count) the pool."""
        if self._workers_pool is not None and self._workers_n == workers:
            return self._workers_pool
        self.close_pool()
        try:
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = mp.get_context()
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(self.plan.to_arrays(), self.plan.name, self.semantics.name),
            )
        except (ImportError, OSError):  # pragma: no cover - no process support
            return None
        self._workers_pool = pool
        self._workers_n = workers
        return pool

    def close_pool(self) -> None:
        """Shut down the parallel worker pool (no-op when none exists)."""
        if self._workers_pool is not None:
            # wait=True: a non-waited shutdown leaves the pool's management
            # thread racing interpreter exit (atexit "Bad file descriptor"
            # noise); pool teardown is rare, so blocking is cheap.
            self._workers_pool.shutdown(wait=True, cancel_futures=True)
            self._workers_pool = None
            self._workers_n = 0

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown timing
        try:
            self.close_pool()
        except Exception:
            pass


#: Per-worker-process executor, installed by ``_worker_init`` after fork/spawn.
_WORKER_EXECUTOR: PlanExecutor | None = None


def _worker_init(plan_arrays: dict, name: str, semantics: str = "count") -> None:
    global _WORKER_EXECUTOR
    _WORKER_EXECUTOR = PlanExecutor(
        ExecutionPlan.from_arrays(plan_arrays, name=name), semantics=semantics
    )


def _eval_shard(x: np.ndarray) -> np.ndarray:
    assert _WORKER_EXECUTOR is not None, "worker pool not initialized"
    return _WORKER_EXECUTOR.run(x)
