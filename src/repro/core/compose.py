"""Network composition combinators.

Balancing networks compose in exactly two ways — serially (the output
sequence of one feeds the input sequence of the next, as the paper's
Figure 7 does with the `C` copies feeding `M`) and in parallel (disjoint
networks side by side, as the `p(n-1)` copies of `C` sit).  These
combinators build composite :class:`~repro.core.network.Network` objects
from existing ones without touching their internals.

Useful identities they enable (tested in the suite):

* serial(counting, counting) is still a counting network (idempotence);
* serial(anything, counting) is a counting network;
* parallel(sorters) followed by a merger is the generic construction.
"""

from __future__ import annotations

from .network import Network, NetworkBuilder

__all__ = ["serial", "parallel", "repeat"]


def serial(*nets: Network, name: str | None = None) -> Network:
    """Serial composition: ``nets[0]``'s output sequence position ``k``
    feeds ``nets[1]``'s input position ``k``, and so on.  All networks must
    share one width."""
    if not nets:
        raise ValueError("serial composition needs at least one network")
    width = nets[0].width
    for n in nets:
        if n.width != width:
            raise ValueError(f"width mismatch: {n.name} has width {n.width}, expected {width}")
    b = NetworkBuilder(width)
    wires = list(b.inputs)
    for n in nets:
        wires = b.subnetwork(n, wires)
    label = name or (" ; ".join(n.name for n in nets))
    return b.finish(wires, name=label)


def parallel(*nets: Network, name: str | None = None) -> Network:
    """Parallel composition: disjoint networks stacked; the input/output
    sequence is the concatenation of the parts."""
    if not nets:
        raise ValueError("parallel composition needs at least one network")
    width = sum(n.width for n in nets)
    b = NetworkBuilder(width)
    wires = list(b.inputs)
    outs: list[int] = []
    offset = 0
    for n in nets:
        outs.extend(b.subnetwork(n, wires[offset : offset + n.width]))
        offset += n.width
    label = name or (" | ".join(n.name for n in nets))
    return b.finish(outs, name=label)


def repeat(net: Network, times: int, name: str | None = None) -> Network:
    """``times`` serial copies of ``net`` (e.g. periodic-network blocks)."""
    if times < 1:
        raise ValueError("times must be >= 1")
    return serial(*([net] * times), name=name or f"{net.name}^{times}")
