"""Layer-compiled network representation for vectorized evaluation.

Per the optimization guidance for numerical Python (profile, then vectorize
the hot loop), simulators in :mod:`repro.sim` never iterate over individual
balancers in Python on the hot path.  Instead a network is compiled once into
*width groups per layer*: within one layer, all balancers of equal width
``p`` become a pair of integer index matrices of shape ``(k, p)`` (``k``
balancers).  Evaluating a layer is then one gather, one vectorized
reduction/sort, and one scatter per width group — contiguous numpy work.

Compilation results are memoized per :class:`~repro.core.network.Network`
instance in a ``WeakKeyDictionary`` so repeated simulations are cheap.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass

import numpy as np

from ..obs import runtime as _obs
from .network import Network

__all__ = ["WidthGroup", "CompiledNetwork", "compile_network"]


@dataclass(frozen=True)
class WidthGroup:
    """All balancers of one width within one layer.

    ``in_idx`` and ``out_idx`` have shape ``(k, p)``: row ``r`` lists the
    SSA wire ids feeding / leaving balancer ``r`` of this group, with column
    0 the top position.  ``offsets`` is the precomputed ``(1, p, 1)``
    position vector used by the counting kernel (hoisted here so the
    per-layer loop allocates nothing but the gather/scatter temporaries).
    """

    width: int
    in_idx: np.ndarray
    out_idx: np.ndarray
    offsets: np.ndarray

    @property
    def count(self) -> int:
        return self.in_idx.shape[0]


@dataclass(frozen=True)
class CompiledNetwork:
    """A network lowered to per-layer width groups.

    ``layers[d]`` holds the :class:`WidthGroup` objects of layer ``d``.
    ``num_wires``, ``input_idx`` and ``output_idx`` mirror the source
    network; evaluation allocates one ``(num_wires, batch)`` state array and
    sweeps the layers in order.
    """

    num_wires: int
    input_idx: np.ndarray
    output_idx: np.ndarray
    layers: tuple[tuple[WidthGroup, ...], ...]

    @property
    def width(self) -> int:
        return self.input_idx.shape[0]

    @property
    def depth(self) -> int:
        return len(self.layers)


_cache: "weakref.WeakKeyDictionary[Network, CompiledNetwork]" = weakref.WeakKeyDictionary()


def compile_network(net: Network) -> CompiledNetwork:
    """Compile (and memoize) ``net`` into a :class:`CompiledNetwork`."""
    cached = _cache.get(net)
    if cached is not None:
        if _obs.enabled:
            from ..obs.metrics import default_registry

            default_registry().counter("core.compile_cache_hits").inc()
        return cached

    t0 = time.perf_counter()
    layers: list[tuple[WidthGroup, ...]] = []
    for layer in net.layers():
        by_width: dict[int, list] = {}
        for b in layer:
            by_width.setdefault(b.width, []).append(b)
        groups = []
        for width in sorted(by_width):
            bs = by_width[width]
            in_idx = np.array([b.inputs for b in bs], dtype=np.int64)
            out_idx = np.array([b.outputs for b in bs], dtype=np.int64)
            offsets = np.arange(width, dtype=np.int64)[None, :, None]
            groups.append(WidthGroup(width, in_idx, out_idx, offsets))
        layers.append(tuple(groups))

    compiled = CompiledNetwork(
        num_wires=net.num_wires,
        input_idx=np.array(net.inputs, dtype=np.int64),
        output_idx=np.array(net.outputs, dtype=np.int64),
        layers=tuple(layers),
    )
    _cache[net] = compiled
    if _obs.enabled:
        from ..obs.metrics import DEFAULT_TIME_BUCKETS, default_registry
        from ..obs.tracer import default_tracer

        dur = time.perf_counter() - t0
        reg = default_registry()
        reg.counter("core.compiles").inc()
        reg.histogram("core.compile_seconds", DEFAULT_TIME_BUCKETS).observe(dur)
        default_tracer().record(
            "compile",
            network=net.name,
            layers=compiled.depth,
            balancers=net.size,
            dur_s=round(dur, 9),
        )
    return compiled
