"""Balancing/comparator network intermediate representation.

A network is an acyclic DAG of ``p``-balancers (equivalently
``p``-comparators — the two interpretations share one structure, per the
isomorphism of Aspnes, Herlihy and Shavit cited in the paper).  We use an
**SSA wire model**: every balancer consumes ``p`` existing wire ids and
produces ``p`` fresh wire ids.  Wire ids are dense integers.  This makes the
paper's pervasive re-arrangements (column-major layouts, strided
subsequences, block splits) free relabelings: a construction is simply a
function from an ordered list of input wire ids to an ordered list of output
wire ids.

Conventions
-----------
* Balancer output position 0 receives the *most* tokens
  (``ceil(T/p)`` of ``T``); the isomorphic comparator places the *largest*
  value on position 0.  Step sequences are therefore non-increasing.
* ``depth`` is the maximum number of balancers traversed by any value,
  computed per-wire over the DAG (input wires have depth 0).

The :class:`NetworkBuilder` is the only way to create networks; it enforces
well-formedness (wires defined before use, consumed at most once, no width-1
or width-0 balancers unless explicitly allowed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..obs import runtime as _obs

__all__ = ["Balancer", "Network", "NetworkBuilder", "identity_network", "single_balancer_network"]


@dataclass(frozen=True)
class Balancer:
    """One ``p``-balancer (or ``p``-comparator) in SSA form.

    ``inputs[k]`` / ``outputs[k]`` are wire ids; output position 0 is the
    "top" wire (most tokens / largest value).
    """

    index: int
    inputs: tuple[int, ...]
    outputs: tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.inputs)

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.outputs):
            raise ValueError("balancer fan-in must equal fan-out")
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError(f"balancer {self.index} has duplicate input wires")

    @staticmethod
    def _trusted(index: int, inputs: tuple[int, ...], outputs: tuple[int, ...]) -> "Balancer":
        """Construct without invariant checks.  Only for callers relabeling
        balancers out of an already-validated :class:`Network` through an
        injective wire mapping."""
        b = object.__new__(Balancer)
        object.__setattr__(b, "index", index)
        object.__setattr__(b, "inputs", inputs)
        object.__setattr__(b, "outputs", outputs)
        return b


class Network:
    """An immutable balancing/comparator network.

    Attributes
    ----------
    width:
        Number of network input wires (== number of output wires).
    inputs / outputs:
        Wire-id lists defining the network's input and output *sequence
        order*: sequence element ``k`` enters on ``inputs[k]`` and leaves on
        ``outputs[k]``.
    balancers:
        Topologically ordered balancers.
    num_wires:
        Total SSA wires (inputs plus every balancer output).
    name:
        Human-readable label (e.g. ``"K(2,3,5)"``).
    """

    def __init__(
        self,
        inputs: Sequence[int],
        outputs: Sequence[int],
        balancers: Sequence[Balancer],
        num_wires: int,
        name: str = "network",
        validate: bool = True,
    ) -> None:
        self.inputs: tuple[int, ...] = tuple(inputs)
        self.outputs: tuple[int, ...] = tuple(outputs)
        self.balancers: tuple[Balancer, ...] = tuple(balancers)
        self.num_wires = int(num_wires)
        self.name = name
        self._wire_depth: np.ndarray | None = None
        self._layers: list[list[Balancer]] | None = None
        self._wire_arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._io_arrays: tuple[np.ndarray, np.ndarray] | None = None
        if validate:
            self._validate()

    # -- structure ---------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.inputs)

    @property
    def size(self) -> int:
        """Number of balancers."""
        return len(self.balancers)

    @property
    def max_balancer_width(self) -> int:
        """Largest balancer fan-in (0 for the identity network)."""
        return max((b.width for b in self.balancers), default=0)

    def balancer_width_histogram(self) -> dict[int, int]:
        """Map balancer width -> count of balancers with that width."""
        hist: dict[int, int] = {}
        for b in self.balancers:
            hist[b.width] = hist.get(b.width, 0) + 1
        return dict(sorted(hist.items()))

    def wire_depths(self) -> np.ndarray:
        """Depth of every SSA wire: 0 for inputs, ``1 + max(in)`` below a
        balancer."""
        if self._wire_depth is None:
            depth = np.zeros(self.num_wires, dtype=np.int64)
            for b in self.balancers:
                d = 1 + max((int(depth[i]) for i in b.inputs), default=0)
                for o in b.outputs:
                    depth[o] = d
            self._wire_depth = depth
        return self._wire_depth

    @property
    def depth(self) -> int:
        """Maximum number of balancers traversed by any value."""
        if self.size == 0:
            return 0
        depths = self.wire_depths()
        return int(max(depths[list(self.outputs)], default=0))

    def io_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(inputs, outputs)`` wire-id arrays (int64).

        Evaluators index the state array with these on every call; caching
        them here stops :func:`repro.sim.propagate_counts_reference` and the
        fault-override path from rebuilding ``list(...)`` conversions per
        batch.  Treat the returned arrays as read-only.
        """
        if self._io_arrays is None:
            self._io_arrays = (
                np.array(self.inputs, dtype=np.int64),
                np.array(self.outputs, dtype=np.int64),
            )
        return self._io_arrays

    def wire_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached flat per-balancer wiring: ``(widths, in_concat, out_concat,
        bounds)``.

        ``in_concat``/``out_concat`` concatenate every balancer's input /
        output wire ids in balancer order; balancer ``j`` owns the slice
        ``[bounds[j], bounds[j+1])``.  Shared by the vectorized
        :meth:`NetworkBuilder.subnetwork` inliner, the fault-override
        evaluator, and the on-disk network serializer.
        """
        if self._wire_arrays is None:
            widths = np.array([b.width for b in self.balancers], dtype=np.int64)
            in_concat = np.fromiter(
                (w for b in self.balancers for w in b.inputs),
                dtype=np.int64,
                count=int(widths.sum()),
            )
            out_concat = np.fromiter(
                (w for b in self.balancers for w in b.outputs),
                dtype=np.int64,
                count=int(widths.sum()),
            )
            bounds = np.concatenate(([0], np.cumsum(widths))).astype(np.int64)
            self._wire_arrays = (widths, in_concat, out_concat, bounds)
        return self._wire_arrays

    def layers(self) -> list[list[Balancer]]:
        """Balancers grouped by layer (ASAP schedule): balancer layer =
        ``max(depth of its input wires)``; values cross at most one balancer
        per layer."""
        if self._layers is None:
            depths = self.wire_depths()
            out: list[list[Balancer]] = [[] for _ in range(self.depth)]
            for b in self.balancers:
                layer = max((int(depths[i]) for i in b.inputs), default=0)
                out[layer].append(b)
            self._layers = out
        return self._layers

    # -- validation & serialization -----------------------------------------

    def _validate(self) -> None:
        if len(self.inputs) != len(self.outputs):
            raise ValueError("network must have equal numbers of input and output wires")
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError("duplicate input wires")
        if len(set(self.outputs)) != len(self.outputs):
            raise ValueError("duplicate output wires")
        defined = set(self.inputs)
        consumed: set[int] = set()
        for b in self.balancers:
            for wire in b.inputs:
                if wire not in defined:
                    raise ValueError(f"balancer {b.index} reads undefined wire {wire}")
                if wire in consumed:
                    raise ValueError(f"wire {wire} consumed twice (balancer {b.index})")
                consumed.add(wire)
            for wire in b.outputs:
                if wire in defined:
                    raise ValueError(f"balancer {b.index} redefines wire {wire}")
                defined.add(wire)
        terminal = defined - consumed
        if set(self.outputs) != terminal:
            missing = terminal - set(self.outputs)
            extra = set(self.outputs) - terminal
            raise ValueError(
                f"outputs must be exactly the unconsumed wires; "
                f"missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
            )
        if self.num_wires != len(defined):
            raise ValueError(f"num_wires={self.num_wires} but {len(defined)} wires defined")

    def to_dict(self) -> dict:
        """JSON-serializable structural description."""
        return {
            "name": self.name,
            "num_wires": self.num_wires,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "balancers": [[list(b.inputs), list(b.outputs)] for b in self.balancers],
        }

    def save(self, path) -> None:
        """Write the structural description as JSON to ``path``."""
        import json
        import pathlib

        pathlib.Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path) -> "Network":
        """Read a network previously written with :meth:`save`."""
        import json
        import pathlib

        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    @classmethod
    def from_dict(cls, data: dict) -> "Network":
        balancers = [
            Balancer(i, tuple(ins), tuple(outs)) for i, (ins, outs) in enumerate(data["balancers"])
        ]
        return cls(
            inputs=data["inputs"],
            outputs=data["outputs"],
            balancers=balancers,
            num_wires=data["num_wires"],
            name=data.get("name", "network"),
        )

    def renamed(self, name: str) -> "Network":
        """A copy of this network carrying a different label."""
        net = Network(self.inputs, self.outputs, self.balancers, self.num_wires, name, validate=False)
        net._wire_depth = self._wire_depth
        net._layers = self._layers
        net._wire_arrays = self._wire_arrays
        net._io_arrays = self._io_arrays
        return net

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, width={self.width}, depth={self.depth}, "
            f"size={self.size}, max_balancer={self.max_balancer_width})"
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Network):
            return NotImplemented
        return (
            self.inputs == other.inputs
            and self.outputs == other.outputs
            and self.balancers == other.balancers
        )

    def __hash__(self) -> int:
        return hash((self.inputs, self.outputs, len(self.balancers)))


class NetworkBuilder:
    """Mutable builder for :class:`Network`.

    Typical use from a construction function::

        def my_stage(b: NetworkBuilder, wires: list[int]) -> list[int]:
            top, bottom = wires[: len(wires)//2], wires[len(wires)//2 :]
            merged = []
            for t, u in zip(top, bottom):
                merged.extend(b.balancer([t, u]))
            return merged

        builder = NetworkBuilder(width=8)
        outs = my_stage(builder, list(builder.inputs))
        net = builder.finish(outs, name="demo")
    """

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.inputs: tuple[int, ...] = tuple(range(width))
        self._next_wire = width
        self._balancers: list[Balancer] = []
        self._defined: list[bool] = [True] * width
        self._consumed: list[bool] = [False] * width
        self._t_build_start = time.perf_counter()

    @property
    def width(self) -> int:
        return len(self.inputs)

    @property
    def num_balancers(self) -> int:
        return len(self._balancers)

    def balancer(self, in_wires: Sequence[int]) -> list[int]:
        """Append a balancer consuming ``in_wires``; returns its fresh output
        wire ids (position 0 = top)."""
        ins = tuple(int(w) for w in in_wires)
        if len(ins) < 2:
            raise ValueError(f"balancer width must be >= 2, got {len(ins)}")
        for w in ins:
            if not (0 <= w < self._next_wire) or not self._defined[w]:
                raise ValueError(f"wire {w} is not defined")
            if self._consumed[w]:
                raise ValueError(f"wire {w} already consumed")
        outs = tuple(range(self._next_wire, self._next_wire + len(ins)))
        self._next_wire += len(ins)
        self._defined.extend([True] * len(ins))
        self._consumed.extend([False] * len(ins))
        for w in ins:
            self._consumed[w] = True
        b = Balancer(len(self._balancers), ins, outs)
        self._balancers.append(b)
        return list(outs)

    def maybe_balancer(self, in_wires: Sequence[int]) -> list[int]:
        """Like :meth:`balancer` but a no-op passthrough for width <= 1.

        Construction code hits width-0/1 "balancers" in degenerate parameter
        regimes (Section 5.3 extreme values); the paper then uses no network.
        """
        if len(in_wires) <= 1:
            return list(in_wires)
        return self.balancer(in_wires)

    def subnetwork(self, net: Network, in_wires: Sequence[int]) -> list[int]:
        """Inline an existing network onto ``in_wires``; returns the wire ids
        carrying the subnetwork's output sequence.

        The inline is a pure array relabeling: one fresh contiguous id block
        covers every balancer output of ``net`` (in ``net``'s own allocation
        order, so the result is wire-for-wire identical to replaying the
        construction), and the already-validated balancers are copied with
        their wires mapped through one int64 lookup table — no per-balancer
        well-formedness re-checks, no Python dict per wire.
        """
        if len(in_wires) != net.width:
            raise ValueError(f"subnetwork width {net.width} != {len(in_wires)} wires given")
        ins = [int(w) for w in in_wires]
        if len(set(ins)) != len(ins):
            raise ValueError("duplicate wires given to subnetwork")
        for w in ins:
            if not (0 <= w < self._next_wire) or not self._defined[w]:
                raise ValueError(f"wire {w} is not defined")
            if self._consumed[w]:
                raise ValueError(f"wire {w} already consumed")
        if net.size == 0:
            pos = {w: i for i, w in enumerate(net.inputs)}
            return [ins[pos[w]] for w in net.outputs]

        widths, in_concat, out_concat, bounds = net.wire_arrays()
        total = int(bounds[-1])
        base = self._next_wire
        mapping = np.empty(net.num_wires, dtype=np.int64)
        mapping[net.io_arrays()[0]] = ins
        mapping[out_concat] = np.arange(base, base + total, dtype=np.int64)
        new_in = mapping[in_concat].tolist()
        self._next_wire += total
        self._defined.extend([True] * total)
        self._consumed.extend([False] * total)
        for w in new_in:
            self._consumed[w] = True
        append = self._balancers.append
        index = len(self._balancers)
        blist = bounds.tolist()
        trusted = Balancer._trusted
        for j in range(net.size):
            lo, hi = blist[j], blist[j + 1]
            append(trusted(index + j, tuple(new_in[lo:hi]), tuple(range(base + lo, base + hi))))
        return [int(mapping[w]) for w in net.outputs]

    def finish(self, outputs: Sequence[int], name: str = "network") -> Network:
        """Freeze into a :class:`Network` whose output sequence order is
        ``outputs``.

        The builder enforces the per-balancer invariants (wires defined
        before use, consumed at most once) incrementally, so the only thing
        left to check is that ``outputs`` is exactly the set of unconsumed
        wires — done here vectorized instead of re-walking every balancer
        through :meth:`Network._validate`.
        """
        outs = [int(w) for w in outputs]
        terminal = np.flatnonzero(~np.asarray(self._consumed, dtype=bool))
        if len(outs) != len(terminal) or len(set(outs)) != len(outs) or not np.array_equal(
            np.sort(np.asarray(outs, dtype=np.int64)), terminal
        ):
            raise ValueError(
                f"outputs must be exactly the {len(terminal)} unconsumed wires, "
                f"got {len(outs)} wires"
            )
        net = Network(
            inputs=self.inputs,
            outputs=outs,
            balancers=self._balancers,
            num_wires=self._next_wire,
            name=name,
            validate=False,
        )
        if _obs.enabled:
            from ..obs.metrics import DEFAULT_TIME_BUCKETS, default_registry
            from ..obs.tracer import default_tracer

            dur = time.perf_counter() - self._t_build_start
            reg = default_registry()
            reg.counter("core.builds").inc()
            reg.histogram("core.build_seconds", DEFAULT_TIME_BUCKETS).observe(dur)
            default_tracer().record(
                "build",
                network=name,
                width=net.width,
                balancers=net.size,
                dur_s=round(dur, 9),
            )
        return net


def identity_network(width: int, name: str = "identity") -> Network:
    """The width-``width`` network with no balancers."""
    b = NetworkBuilder(width)
    return b.finish(list(b.inputs), name=name)


def single_balancer_network(width: int, name: str | None = None) -> Network:
    """A network consisting of one ``width``-balancer (a counting network)."""
    b = NetworkBuilder(width)
    outs = b.balancer(list(b.inputs))
    return b.finish(outs, name=name or f"balancer({width})")
