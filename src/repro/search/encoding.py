"""CNF comparator-placement encoding for depth-optimal sorting networks.

The encoding follows the scheme of *Optimal Sorting Networks* (Bundala &
Zavodny, 1310.6271): a placement variable per ``layer x ordered wire
pair`` decides where comparators go, structural clauses keep each wire on
at most one comparator per layer, and — per 0-1 counterexample — a column
of propagation variables tracks the value each wire carries through the
prefix, ending in "output is sorted" clauses.  Rather than asserting all
``2^w`` inputs up front, :func:`sat_search` runs counterexample-guided
refinement: solve, simulate the decoded network on every 0-1 input, feed
the failures back as new counterexamples, repeat.  An UNSAT answer is a
proof (relative to the standard-form restriction ``i < j``, which loses
no generality) that no network of the requested depth exists.

Solving needs ``pysat`` (the ``search`` extra).  Everything else here —
building the CNF, DIMACS export, decoding — is dependency-free, so the
encoding is testable and exportable to any external solver without
``pysat`` installed.  The clause helpers (:func:`implies`,
:func:`variables_same`, :func:`at_most_one`) are the small combinator
vocabulary the whole encoding is phrased in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.network import Network

__all__ = [
    "CNF",
    "ComparatorPlacementEncoding",
    "SatResult",
    "SearchDependencyError",
    "at_most_one",
    "have_pysat",
    "implies",
    "sat_search",
    "variables_same",
]


class SearchDependencyError(RuntimeError):
    """An optional dependency of the SAT path (``pysat``) is missing."""


def have_pysat() -> bool:
    """True when ``pysat`` (the ``search`` extra) is importable."""
    try:
        import pysat.solvers  # noqa: F401
    except ImportError:
        return False
    return True


class CNF:
    """A growing CNF formula: fresh-variable allocation plus a clause list.

    Variables are positive ints, literals signed ints (DIMACS
    convention).  Optional names make decoded models debuggable.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.names: dict[int, str] = {}

    def new_var(self, name: str = "") -> int:
        self.num_vars += 1
        if name:
            self.names[self.num_vars] = name
        return self.num_vars

    def add(self, clause: list[int]) -> None:
        if not clause:
            raise ValueError("empty clause makes the formula trivially UNSAT")
        self.clauses.append(list(clause))

    def extend(self, clauses: list[list[int]]) -> None:
        for c in clauses:
            self.add(c)

    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        lines.extend(" ".join(str(lit) for lit in c) + " 0" for c in self.clauses)
        return "\n".join(lines) + "\n"


def implies(a: int, b: int) -> list[int]:
    """The clause for ``a -> b``."""
    return [-a, b]


def variables_same(a: int, b: int, condition: int | None = None) -> list[list[int]]:
    """Clauses forcing ``a == b``, optionally only when ``condition`` holds."""
    if condition is None:
        return [[-a, b], [a, -b]]
    return [[-condition, -a, b], [-condition, a, -b]]


def at_most_one(variables: list[int]) -> list[list[int]]:
    """Pairwise at-most-one over a (small) variable list."""
    return [
        [-variables[x], -variables[y]]
        for x in range(len(variables) - 1)
        for y in range(x + 1, len(variables))
    ]


class ComparatorPlacementEncoding:
    """CNF encoding of "a depth-``d`` width-``w`` standard-form sorting
    network exists", refined one 0-1 counterexample at a time.

    Structural skeleton (placement + used variables, at-most-one per
    wire per layer) is built eagerly; call :meth:`add_counterexample`
    with 0-1 input masks to constrain behaviour, then solve
    ``self.cnf`` and :meth:`decode` the model.
    """

    def __init__(self, width: int, depth: int) -> None:
        if width < 2:
            raise ValueError("width must be >= 2")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.width = width
        self.depth = depth
        self.cnf = CNF()
        self.pairs = [(i, j) for i in range(width - 1) for j in range(i + 1, width)]
        # place[l][(i, j)]: a comparator spans rails i < j in layer l
        # (top output on rail i — descending standard form).
        self.place = {
            (l, i, j): self.cnf.new_var(f"c[{l}][{i},{j}]")
            for l in range(depth)
            for i, j in self.pairs
        }
        # used[l][k]: some comparator touches rail k in layer l.
        self.used = {
            (l, k): self.cnf.new_var(f"u[{l}][{k}]")
            for l in range(depth)
            for k in range(width)
        }
        self.counterexamples: list[int] = []
        self._structural()

    def _on_wire(self, l: int, k: int) -> list[int]:
        return [self.place[(l, i, j)] for i, j in self.pairs if k in (i, j)]

    def _structural(self) -> None:
        for l in range(self.depth):
            for k in range(self.width):
                on_k = self._on_wire(l, k)
                u = self.used[(l, k)]
                # u <-> OR(on_k); at most one comparator per wire per layer.
                self.cnf.extend(at_most_one(on_k))
                self.cnf.add([-u] + on_k)
                for v in on_k:
                    self.cnf.add(implies(v, u))

    def add_counterexample(self, mask: int) -> None:
        """Require the network to sort the 0-1 input ``mask`` (bit ``k`` =
        value entering rail ``k``) into descending order."""
        if not 0 <= mask < (1 << self.width):
            raise ValueError(f"mask {mask} out of range for width {self.width}")
        self.counterexamples.append(mask)
        t = len(self.counterexamples)
        cnf = self.cnf
        # val[l][k]: value on rail k after layer l (l = 0 is the input).
        val = [[cnf.new_var(f"v{t}[{l}][{k}]") for k in range(self.width)] for l in range(self.depth + 1)]
        for k in range(self.width):
            cnf.add([val[0][k]] if (mask >> k) & 1 else [-val[0][k]])
        for l in range(self.depth):
            for i, j in self.pairs:
                c = self.place[(l, i, j)]
                hi, lo = val[l + 1][i], val[l + 1][j]
                a, b = val[l][i], val[l][j]
                # c -> (hi = a|b, lo = a&b)
                cnf.add([-c, -a, hi])
                cnf.add([-c, -b, hi])
                cnf.add([-c, a, b, -hi])
                cnf.add([-c, lo, -a, -b])
                cnf.add([-c, -lo, a])
                cnf.add([-c, -lo, b])
            for k in range(self.width):
                # untouched rails carry their value through the layer
                cnf.extend(variables_same(val[l][k], val[l + 1][k], condition=-self.used[(l, k)]))
        for k in range(self.width - 1):
            # descending output: never (0 above 1)
            cnf.add([val[self.depth][k], -val[self.depth][k + 1]])

    def decode(self, model: list[int]) -> list[list[tuple[int, int]]]:
        """Read comparator layers off a satisfying assignment (a list of
        signed literals, DIMACS/pysat style)."""
        true = {lit for lit in model if lit > 0}
        return [
            [(i, j) for i, j in self.pairs if self.place[(l, i, j)] in true]
            for l in range(self.depth)
        ]

    def to_dimacs(self) -> str:
        return self.cnf.to_dimacs()


@dataclass
class SatResult:
    """Outcome of a CEGAR SAT search."""

    status: str  # "sat" | "unsat" | "budget"
    width: int
    target_depth: int
    layers: list[list[tuple[int, int]]] = field(default_factory=list)
    rounds: int = 0
    num_vars: int = 0
    num_clauses: int = 0
    counterexamples: int = 0
    network: Network | None = None

    @property
    def found(self) -> bool:
        return self.status == "sat"

    @property
    def comparators(self) -> list[tuple[int, int]]:
        return [c for layer in self.layers for c in layer]


def _simulate_failures(width: int, layers: list[list[tuple[int, int]]], limit: int) -> list[int]:
    """0-1 masks the candidate fails to sort (first ``limit`` of them).

    Bit-sliced over Python big ints: wire ``k`` carries one ``2^w``-bit
    integer whose bit ``m`` is input ``m``'s value on that wire, so a
    compare-exchange is one AND plus one OR across *all* inputs at once
    (a 1 moves to the lower rail index: ``v[i] |= v[j]``, ``v[j] &= old
    v[i]``) and the whole CEGAR simulation is ``O(depth * size)`` bigint
    ops instead of ``2^w`` per-input walks.  Sorted means the low rails
    hold the 1s, so a lane fails iff some adjacent pair reads 0 below 1;
    failures come out in ascending input order, exactly as the per-input
    loop produced them.
    """
    total = 1 << width
    wires = []
    for k in range(width):
        # Square wave of period 2^(k+1): bit m is (m >> k) & 1, doubled
        # out to 2^w bits.
        pat = ((1 << (1 << k)) - 1) << (1 << k)
        span = 1 << (k + 1)
        while span < total:
            pat |= pat << span
            span <<= 1
        wires.append(pat)
    for layer in layers:
        for i, j in layer:
            lo = wires[i] & wires[j]
            wires[i] |= wires[j]
            wires[j] = lo
    viol = 0
    for k in range(width - 1):
        viol |= ~wires[k] & wires[k + 1]
    viol &= (1 << total) - 1
    failures = []
    while viol and len(failures) < limit:
        lsb = viol & -viol
        failures.append(lsb.bit_length() - 1)
        viol ^= lsb
    return failures


def sat_search(
    width: int,
    target_depth: int,
    *,
    max_rounds: int = 64,
    cex_per_round: int = 8,
    solver_name: str = "g3",
) -> SatResult:
    """CEGAR loop: solve the placement encoding, simulate the decoded
    network on all ``2^w`` 0-1 inputs, refine with the failures.

    Raises :class:`SearchDependencyError` when ``pysat`` is missing —
    callers (the CLI) turn that into a clear message and a nonzero exit,
    never a traceback.  ``status="unsat"`` proves no standard-form
    network of ``target_depth`` layers sorts ``width`` wires.
    """
    if not have_pysat():
        raise SearchDependencyError(
            "the SAT search needs the optional 'pysat' dependency; "
            "install the 'search' extra (pip install 'repro[search]') "
            "or use the dependency-free beam search"
        )
    if width > 12:
        raise ValueError("sat_search enumerates 2^width inputs; width > 12 is impractical")

    from pysat.solvers import Solver

    enc = ComparatorPlacementEncoding(width, target_depth)
    # Start from the single-inversion inputs — cheap, and they force at
    # least one comparator across every adjacent rail pair.
    for k in range(width - 1):
        enc.add_counterexample(1 << (k + 1))

    for round_no in range(1, max_rounds + 1):
        with Solver(name=solver_name, bootstrap_with=enc.cnf.clauses) as solver:
            if not solver.solve():
                return SatResult(
                    status="unsat",
                    width=width,
                    target_depth=target_depth,
                    rounds=round_no,
                    num_vars=enc.cnf.num_vars,
                    num_clauses=len(enc.cnf.clauses),
                    counterexamples=len(enc.counterexamples),
                )
            model = solver.get_model()
        layers = enc.decode(model)
        failures = _simulate_failures(width, layers, cex_per_round)
        if not failures:
            from .registry import comparator_network

            net = comparator_network(
                width,
                [c for layer in layers for c in layer],
                name=f"sat[{width}]d{target_depth}",
            )
            return SatResult(
                status="sat",
                width=width,
                target_depth=target_depth,
                layers=[list(l) for l in layers],
                rounds=round_no,
                num_vars=enc.cnf.num_vars,
                num_clauses=len(enc.cnf.clauses),
                counterexamples=len(enc.counterexamples),
                network=net,
            )
        for m in failures:
            enc.add_counterexample(m)

    return SatResult(
        status="budget",
        width=width,
        target_depth=target_depth,
        rounds=max_rounds,
        num_vars=enc.cnf.num_vars,
        num_clauses=len(enc.cnf.clauses),
        counterexamples=len(enc.counterexamples),
    )
