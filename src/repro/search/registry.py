"""Versioned registry of best-known small-width networks.

Entries are fixed-rail comparator lists (see :mod:`repro.search.seeds`)
with a declared ``kind``:

``sorting``
    The network sorts descending — proved exhaustively over all ``2^w``
    0-1 inputs at load (the 0-1 principle makes this a proof for the
    widths the registry holds).

``counting``
    Additionally, no counting violation is found by the step-property
    search (:func:`repro.verify.find_counting_violation` — structured
    adversarial vectors, bounded exhaustive sweeps, seeded random batches).
    Only ``counting`` entries are eligible for substitution into the
    K/L recursion, where the construction's correctness argument needs a
    counting network.

Every entry is validated **at load** — a registry that would hand out an
invalid network raises :class:`ValidationError` instead of loading.  The
registry round-trips through JSON so search-discovered networks
(:mod:`repro.search.beam`, :mod:`repro.search.encoding`) can be persisted
and shared; the file format is versioned via ``REGISTRY_VERSION``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..core.network import Network, NetworkBuilder
from ..verify.counting import find_counting_violation
from ..verify.sorting import find_sorting_violation
from .seeds import seed_records

__all__ = [
    "REGISTRY_VERSION",
    "ValidationError",
    "RegistryEntry",
    "Registry",
    "comparator_network",
    "default_registry",
    "reset_default_registry",
]

REGISTRY_VERSION = 1

#: Widths up to this get the full 2^w exhaustive 0-1 sorting proof at load.
#: The bit-sliced backend (64 packed inputs per uint64 word) makes 2^24
#: evaluations cheap; the prior int64 budget stopped at 20.
EXHAUSTIVE_WIDTH_LIMIT = 24


class ValidationError(ValueError):
    """A registry entry failed load-time validation."""


def comparator_network(
    width: int, comparators: Iterable[tuple[int, int]], name: str = "searched"
) -> Network:
    """Build a :class:`Network` from a fixed-rail comparator list.

    Comparator ``(a, b)`` consumes rails ``a`` and ``b``; the balancer's
    top output (most tokens / largest value) continues on rail ``a``.
    Layering is implicit (ASAP): ``Network.depth`` reports the true
    parallel depth of the list.
    """
    b = NetworkBuilder(width)
    rails = list(b.inputs)
    for a, bb in comparators:
        a, bb = int(a), int(bb)
        if not (0 <= a < width and 0 <= bb < width) or a == bb:
            raise ValidationError(f"comparator ({a}, {bb}) is not a rail pair of width {width}")
        top, bottom = b.balancer([rails[a], rails[bb]])
        rails[a], rails[bb] = top, bottom
    return b.finish(rails, name=name)


@dataclass(frozen=True)
class RegistryEntry:
    """One best-known network: comparator list plus validated metadata."""

    width: int
    kind: str  # "sorting" | "counting"
    comparators: tuple[tuple[int, int], ...]
    origin: str
    notes: str = ""
    depth: int = field(default=0, compare=False)
    size: int = field(default=0, compare=False)

    def network(self, name: str | None = None) -> Network:
        return comparator_network(
            self.width,
            self.comparators,
            name or f"searched[{self.width}]({self.origin})",
        )

    def as_dict(self) -> dict:
        return {
            "width": self.width,
            "kind": self.kind,
            "comparators": [list(c) for c in self.comparators],
            "origin": self.origin,
            "notes": self.notes,
            "depth": self.depth,
            "size": self.size,
        }


def _validate(record: dict) -> RegistryEntry:
    """Validate one raw record into a :class:`RegistryEntry` (or raise)."""
    try:
        width = int(record["width"])
        kind = str(record["kind"])
        comparators = tuple((int(a), int(b)) for a, b in record["comparators"])
        origin = str(record.get("origin", "unknown"))
        notes = str(record.get("notes", ""))
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed registry record: {exc}") from exc
    if kind not in ("sorting", "counting"):
        raise ValidationError(f"{origin}: unknown kind {kind!r}")
    if width < 2:
        raise ValidationError(f"{origin}: width must be >= 2")
    net = comparator_network(width, comparators, name=f"candidate[{width}]")
    if width <= EXHAUSTIVE_WIDTH_LIMIT:
        violation = find_sorting_violation(net, exhaustive_limit=EXHAUSTIVE_WIDTH_LIMIT)
    else:
        violation = find_sorting_violation(net)
    if violation is not None:
        raise ValidationError(f"{origin}: not a sorting network ({violation})")
    if kind == "counting":
        cv = find_counting_violation(net, rng=np.random.default_rng(0))
        if cv is not None:
            raise ValidationError(f"{origin}: declared counting but {cv}")
    declared_depth = record.get("depth")
    if declared_depth is not None and int(declared_depth) != net.depth:
        raise ValidationError(
            f"{origin}: declared depth {declared_depth} != measured {net.depth}"
        )
    declared_size = record.get("size")
    if declared_size is not None and int(declared_size) != net.size:
        raise ValidationError(
            f"{origin}: declared size {declared_size} != measured {net.size}"
        )
    return RegistryEntry(
        width=width,
        kind=kind,
        comparators=comparators,
        origin=origin,
        notes=notes,
        depth=net.depth,
        size=net.size,
    )


class Registry:
    """A validated collection of best-known networks, queried by width."""

    def __init__(self, entries: Iterable[RegistryEntry] = ()) -> None:
        self.entries: list[RegistryEntry] = list(entries)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "Registry":
        """Validate raw records (every entry is checked; any failure
        raises)."""
        return cls(_validate(r) for r in records)

    @classmethod
    def seeded(cls) -> "Registry":
        return cls.from_records(seed_records())

    # -- queries ------------------------------------------------------------

    def best(self, width: int, kind: str = "counting") -> RegistryEntry | None:
        """The shallowest (then smallest) entry of ``kind`` at ``width``.

        ``kind="counting"`` returns counting entries only — the K/L
        substitution path must not receive a sorting-only network.
        ``kind="sorting"`` returns the best entry of either kind (every
        counting network sorts).
        """
        if kind not in ("sorting", "counting"):
            raise ValueError(f"kind must be 'sorting' or 'counting', got {kind!r}")
        candidates = [
            e
            for e in self.entries
            if e.width == width and (kind == "sorting" or e.kind == "counting")
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: (e.depth, e.size))

    def widths(self) -> list[int]:
        return sorted({e.width for e in self.entries})

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- mutation -----------------------------------------------------------

    def add(
        self,
        width: int,
        comparators: Iterable[tuple[int, int]],
        *,
        kind: str | None = None,
        origin: str = "search",
        notes: str = "",
    ) -> RegistryEntry:
        """Validate and add a (typically search-discovered) network.

        With ``kind=None`` the entry is classified automatically: declared
        ``counting`` when the step-property search finds no violation,
        ``sorting`` otherwise (sorting itself is still mandatory — an
        unsorted candidate raises).
        """
        comparators = tuple((int(a), int(b)) for a, b in comparators)
        if kind is None:
            net = comparator_network(width, comparators)
            if find_sorting_violation(net, exhaustive_limit=EXHAUSTIVE_WIDTH_LIMIT) is not None:
                raise ValidationError(f"candidate width-{width} network does not sort")
            counts = find_counting_violation(net, rng=np.random.default_rng(0)) is None
            kind = "counting" if counts else "sorting"
        entry = _validate(
            {
                "width": width,
                "kind": kind,
                "comparators": [list(c) for c in comparators],
                "origin": origin,
                "notes": notes,
            }
        )
        self.entries.append(entry)
        return entry

    # -- JSON round-trip ----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": REGISTRY_VERSION,
                "entries": [e.as_dict() for e in self.entries],
            },
            indent=2,
        )

    def save(self, path) -> pathlib.Path:
        p = pathlib.Path(path)
        p.write_text(self.to_json() + "\n")
        return p

    @classmethod
    def from_json(cls, text: str) -> "Registry":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"registry file is not JSON: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise ValidationError("registry JSON must be an object with 'entries'")
        version = int(data.get("version", -1))
        if version > REGISTRY_VERSION:
            raise ValidationError(
                f"registry version {version} is newer than supported ({REGISTRY_VERSION})"
            )
        return cls.from_records(data["entries"])

    @classmethod
    def load(cls, path) -> "Registry":
        return cls.from_json(pathlib.Path(path).read_text())


_default: Registry | None = None


def default_registry() -> Registry:
    """The process-wide seeded registry (validated once, on first use)."""
    global _default
    if _default is None:
        _default = Registry.seeded()
    return _default


def reset_default_registry(registry: Registry | None = None) -> Registry | None:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default
    prev = _default
    _default = registry
    return prev
