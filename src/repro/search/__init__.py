"""Search-discovered base networks (``repro.search``).

The K/L constructions' end-to-end depth is dominated by their small base
cases ``C(p_i, p_j)`` — shaving a layer off a base block compounds through
every recursion level.  This package discovers and curates depth-optimal
small-width networks and feeds them back into the constructions:

* :mod:`repro.search.encoding` — a CNF comparator-placement encoding
  (variables per layer x wire-pair) with 0-1-principle counterexample
  refinement, solved through the *optional* ``pysat`` dependency;
* :mod:`repro.search.beam` — a seeded, deterministic beam search over layer
  prefixes with a reachable-0-1-output-set heuristic, usable everywhere
  ``pysat`` is not installed;
* :mod:`repro.search.registry` — a versioned registry of best-known
  small-width networks (seeded from published optimal-depth networks and
  the AHS bitonic counting networks), exhaustively 0-1-validated at load,
  with JSON round-trip for search-discovered entries.

The ``variant="searched"`` path of :func:`repro.networks.k_network` /
:func:`repro.networks.l_network` substitutes counting-valid registry
entries into the recursion wherever they are strictly shallower than the
stock sub-construction.
"""

from .beam import BeamResult, beam_search
from .encoding import (
    CNF,
    ComparatorPlacementEncoding,
    SearchDependencyError,
    SatResult,
    at_most_one,
    have_pysat,
    implies,
    sat_search,
    variables_same,
)
from .registry import (
    REGISTRY_VERSION,
    Registry,
    RegistryEntry,
    ValidationError,
    comparator_network,
    default_registry,
    reset_default_registry,
)

__all__ = [
    "BeamResult",
    "beam_search",
    "CNF",
    "ComparatorPlacementEncoding",
    "SearchDependencyError",
    "SatResult",
    "at_most_one",
    "have_pysat",
    "implies",
    "sat_search",
    "variables_same",
    "REGISTRY_VERSION",
    "Registry",
    "RegistryEntry",
    "ValidationError",
    "comparator_network",
    "default_registry",
    "reset_default_registry",
]
