"""Deterministic beam search for shallow sorting networks.

The search grows a network layer by layer.  A state is a prefix of
comparator layers together with the set of 0-1 vectors still reachable at
its outputs (each vector encoded as a bitmask, bit ``i`` = value on rail
``i``).  By the 0-1 principle the prefix extends to a sorting network of
depth ``d`` iff some suffix of ``d - len(prefix)`` layers collapses the
reachable set into the ``w + 1`` sorted masks — so the size of the
unsorted residue is both the goal test and the ranking heuristic.

Comparators are ordered pairs ``(i, j)`` with ``i < j``: the balancer's
top output (larger value) continues on rail ``i``, matching the repo's
descending-sort convention.  By the standard-form theorem (Knuth 5.3.4,
exercise 16) restricting to ``i < j`` loses no generality.

Everything is seeded and deterministic: the only randomness is the order
in which candidate maximal matchings are assembled, drawn from a
``numpy`` generator created from the caller's seed.  No optional
dependencies — this is the search that runs everywhere ``pysat`` is not
installed (the SAT path lives in :mod:`repro.search.encoding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.network import Network
from ..verify.sorting import find_sorting_violation

__all__ = ["BeamResult", "beam_search"]


@dataclass
class BeamResult:
    """Outcome of a beam search run."""

    found: bool
    width: int
    target_depth: int
    layers: list[list[tuple[int, int]]] = field(default_factory=list)
    expansions: int = 0
    seed: int = 0
    network: Network | None = None

    @property
    def comparators(self) -> list[tuple[int, int]]:
        return [c for layer in self.layers for c in layer]

    @property
    def depth(self) -> int:
        return len(self.layers)

    @property
    def size(self) -> int:
        return sum(len(layer) for layer in self.layers)


def _sorted_masks(width: int) -> frozenset[int]:
    # Descending-sorted 0-1 vectors: ones packed onto the low rails.
    return frozenset((1 << k) - 1 for k in range(width + 1))


def _apply_layer(masks: frozenset[int], layer: list[tuple[int, int]]) -> frozenset[int]:
    out = set()
    for m in masks:
        for i, j in layer:
            bi = (m >> i) & 1
            bj = (m >> j) & 1
            if bj > bi:  # larger value on the higher rail: swap onto rail i
                m ^= (1 << i) | (1 << j)
        out.add(m)
    return frozenset(out)


def _useful_pairs(width: int, masks: frozenset[int], sorted_set: frozenset[int]) -> list[tuple[int, int, int]]:
    """Pairs ``(i, j)`` that change at least one unsorted reachable mask,
    with their benefit (number of masks changed)."""
    pairs = []
    unsorted = [m for m in masks if m not in sorted_set]
    for i in range(width - 1):
        for j in range(i + 1, width):
            benefit = sum(1 for m in unsorted if not (m >> i) & 1 and (m >> j) & 1)
            if benefit:
                pairs.append((i, j, benefit))
    return pairs


def _greedy_matching(ordered: list[tuple[int, int]]) -> list[tuple[int, int]]:
    used: set[int] = set()
    layer = []
    for i, j in ordered:
        if i not in used and j not in used:
            layer.append((i, j))
            used.add(i)
            used.add(j)
    return sorted(layer)


def _candidate_layers(
    width: int,
    masks: frozenset[int],
    sorted_set: frozenset[int],
    rng: np.random.Generator,
    fanout: int,
) -> list[list[tuple[int, int]]]:
    pairs = _useful_pairs(width, masks, sorted_set)
    if not pairs:
        return []
    layers: list[list[tuple[int, int]]] = []
    seen: set[tuple[tuple[int, int], ...]] = set()

    def push(ordered: list[tuple[int, int]]) -> None:
        layer = _greedy_matching(ordered)
        key = tuple(layer)
        if layer and key not in seen:
            seen.add(key)
            layers.append(layer)

    # Benefit-greedy matching first (ties broken by rail pair for
    # determinism), then seeded shuffles of the useful pairs.
    push([(i, j) for i, j, _ in sorted(pairs, key=lambda t: (-t[2], t[0], t[1]))])
    flat = [(i, j) for i, j, _ in sorted(pairs, key=lambda t: (t[0], t[1]))]
    for _ in range(fanout * 4):  # bounded: few distinct matchings may exist
        if len(layers) >= fanout:
            break
        order = rng.permutation(len(flat))
        push([flat[k] for k in order])
    return layers[:fanout]


@dataclass(order=True)
class _State:
    score: tuple
    layers: list[list[tuple[int, int]]] = field(compare=False)
    masks: frozenset[int] = field(compare=False)


def beam_search(
    width: int,
    target_depth: int,
    *,
    beam_width: int = 32,
    fanout: int = 12,
    max_expansions: int = 20_000,
    seed: int = 0,
    objective: str = "depth",
    on_progress: Callable[[int, int, int], None] | None = None,
) -> BeamResult:
    """Search for a width-``width`` sorting network of depth ``<= target_depth``.

    ``objective`` ranks otherwise-equal states: ``"depth"`` ignores
    comparator count (any layer that shrinks the residue is as good as a
    thinner one), ``"size"`` prefers prefixes with fewer comparators, so
    the first network found tends to be smaller at the same depth.

    Deterministic for a fixed ``(width, target_depth, beam_width, fanout,
    seed, objective)`` tuple.  Returns a :class:`BeamResult`; when
    ``found``, ``result.network`` is the built :class:`Network`,
    re-validated by the exhaustive 0-1 sorting check before being
    returned (the search cannot hand back an unverified network).
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    if target_depth < 1:
        raise ValueError("target_depth must be >= 1")
    if objective not in ("depth", "size"):
        raise ValueError(f"objective must be 'depth' or 'size', got {objective!r}")

    rng = np.random.default_rng(seed)
    sorted_set = _sorted_masks(width)
    all_masks = frozenset(range(1 << width))

    def score(masks: frozenset[int], layers: list[list[tuple[int, int]]]) -> tuple:
        residue = len(masks - sorted_set)
        size = sum(len(l) for l in layers)
        # Deterministic final tie-break so equal-score states keep a
        # stable order under sort.
        sig = hash((tuple(tuple(l) for l in layers),)) & 0xFFFFFFFF
        if objective == "size":
            return (residue, size, sig)
        return (residue, sig, size)

    beam = [_State(score(all_masks, []), [], all_masks)]
    expansions = 0
    half = width // 2

    for depth in range(target_depth):
        remaining = target_depth - depth
        nxt: list[_State] = []
        seen_masks: set[frozenset[int]] = set()
        for state in beam:
            if len(state.masks - sorted_set) == 0:
                nxt.append(state)
                continue
            # A layer of c <= floor(w/2) comparators merges at most 2^c
            # masks pairwise, so a prefix whose reachable set cannot
            # shrink to w+1 sorted masks in the remaining layers is dead.
            if len(state.masks) > (width + 1) << (half * remaining):
                continue
            for layer in _candidate_layers(width, state.masks, sorted_set, rng, fanout):
                expansions += 1
                if expansions > max_expansions:
                    return BeamResult(
                        found=False,
                        width=width,
                        target_depth=target_depth,
                        expansions=expansions - 1,
                        seed=seed,
                    )
                masks = _apply_layer(state.masks, layer)
                if masks in seen_masks:
                    continue
                seen_masks.add(masks)
                layers = state.layers + [layer]
                nxt.append(_State(score(masks, layers), layers, masks))
        if not nxt:
            break
        nxt.sort()
        beam = nxt[:beam_width]
        if on_progress is not None:
            best = beam[0]
            on_progress(depth + 1, len(best.masks - sorted_set), expansions)
        if len(beam[0].masks - sorted_set) == 0:
            break

    best = beam[0]
    if len(best.masks - sorted_set) != 0:
        return BeamResult(
            found=False,
            width=width,
            target_depth=target_depth,
            expansions=expansions,
            seed=seed,
        )

    # Late import: registry imports seeds only; no cycle, but keep the
    # builder in one place.
    from .registry import comparator_network

    net = comparator_network(
        width,
        [c for layer in best.layers for c in layer],
        name=f"beam[{width}]d{len(best.layers)}s{seed}",
    )
    # Bit-sliced exhaustive re-prove (backend default): 2^w packed words,
    # cheap at every width the beam search can reach.
    violation = find_sorting_violation(net)
    if violation is not None:  # pragma: no cover - the mask semantics ARE the 0-1 run
        raise AssertionError(f"beam search returned a non-sorting network: {violation}")
    return BeamResult(
        found=True,
        width=width,
        target_depth=target_depth,
        layers=best.layers,
        expansions=expansions,
        seed=seed,
        network=net,
    )
