"""Seed data for the best-known network registry.

Two kinds of entries:

* **Sorting-optimal seeds** — fixed comparator lists transcribed from
  published depth-optimal sorting networks (SNIPPETS.md §1, the
  mlochbaum/SingeliSort networks tracing back to bertdobbelaere's tables):
  ``N4/D3``, ``N8/D6``, ``N12`` (measured ASAP depth 8) plus Batcher's
  odd-even mergesort at width 16 (depth 10).  These are *sorting* networks
  only: per the paper (§2 / Figure 3), a sorting network built from
  2-comparators does not automatically count, and none of these do.

* **Counting seeds** — the AHS bitonic counting networks at widths 4, 8 and
  16 (depth ``k(k+1)/2`` = 3, 6, 10), generated here in fixed-rail
  comparator form.  These are the entries the ``variant="searched"`` K/L
  path may substitute into the counting recursion: bitonic *is* a proven
  counting network, and at widths 4/8/16 its depth coincides with the best
  known sorting-network depth of the same width from 2-balancers.

All comparators are ordered pairs ``(a, b)`` on rails: the balancer's top
output (most tokens / largest value) continues on rail ``a``.  Every seed is
exhaustively 0-1-validated when the registry loads — a bad transcription
cannot enter the system silently.
"""

from __future__ import annotations

__all__ = [
    "bitonic_comparators",
    "odd_even_comparators",
    "seed_records",
]

#: bertdobbelaere.github.io/sorting_networks.html#N4L5D3 (via SingeliSort).
_N4_D3 = [(0, 2), (1, 3), (0, 1), (2, 3), (1, 2)]

#: bertdobbelaere.github.io/sorting_networks.html#N8L19D6 (via SingeliSort).
_N8_D6 = [
    (0, 2), (1, 3), (4, 6), (5, 7),
    (0, 4), (1, 5), (2, 6), (3, 7),
    (0, 1), (2, 3), (4, 5), (6, 7),
    (2, 4), (3, 5), (1, 4), (3, 6),
    (1, 2), (3, 4), (5, 6),
]

#: SingeliSort's 12-input network (40 comparators); its ASAP-layered depth
#: measures 8, matching the proven optimal depth for 12 channels.
_N12_D8 = [
    (0, 8), (1, 7), (2, 6), (3, 11), (4, 10), (5, 9),
    (0, 2), (1, 4), (3, 5), (6, 8), (7, 10), (9, 11),
    (0, 1), (2, 9), (4, 7), (5, 6), (10, 11),
    (1, 3), (2, 7), (4, 9), (8, 10),
    (0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11),
    (1, 2), (3, 5), (6, 8), (9, 10),
    (2, 4), (3, 6), (5, 8), (7, 9),
    (1, 2), (3, 4), (5, 6), (7, 8), (9, 10),
]


def bitonic_comparators(n: int) -> list[tuple[int, int]]:
    """The AHS bitonic counting network of width ``n = 2^k`` in fixed-rail
    form (depth ``k(k+1)/2``), oriented for descending sort: within an
    "up" block the top output stays on the lower rail."""
    if n < 2 or n & (n - 1):
        raise ValueError(f"bitonic requires a power-of-two width, got {n}")
    comps: list[tuple[int, int]] = []
    k = 2
    while k <= n:
        j = k >> 1
        while j >= 1:
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    if i & k:
                        comps.append((partner, i))
                    else:
                        comps.append((i, partner))
            j >>= 1
        k <<= 1
    return comps


def odd_even_comparators(n: int) -> list[tuple[int, int]]:
    """Batcher's odd-even mergesort of width ``n = 2^k`` in fixed-rail form
    (depth ``k(k+1)/2``); a sorting network that is *not* a counting
    network."""
    if n < 2 or n & (n - 1):
        raise ValueError(f"odd-even requires a power-of-two width, got {n}")
    comps: list[tuple[int, int]] = []
    p = 1
    while p < n:
        k = p
        while k >= 1:
            j = k % p
            while j <= n - 1 - k:
                for i in range(min(k - 1, n - j - k - 1) + 1):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        comps.append((j + i, j + i + k))
                j += 2 * k
            k //= 2
        p *= 2
    return comps


def seed_records() -> list[dict]:
    """The registry's built-in entries as plain records (validated on
    load by :mod:`repro.search.registry`)."""
    records = [
        {
            "width": 4,
            "kind": "sorting",
            "comparators": list(_N4_D3),
            "origin": "seed:dobbelaere-N4L5D3",
            "notes": "depth-optimal sorting network, 5 comparators",
        },
        {
            "width": 8,
            "kind": "sorting",
            "comparators": list(_N8_D6),
            "origin": "seed:dobbelaere-N8L19D6",
            "notes": "depth-optimal sorting network, 19 comparators",
        },
        {
            "width": 12,
            "kind": "sorting",
            "comparators": list(_N12_D8),
            "origin": "seed:singelisort-N12",
            "notes": "40 comparators; ASAP depth 8 matches the optimal depth for 12 channels",
        },
        {
            "width": 16,
            "kind": "sorting",
            "comparators": odd_even_comparators(16),
            "origin": "seed:batcher-odd-even-N16D10",
            "notes": "Batcher odd-even mergesort (63 comparators); best known depth is 9",
        },
    ]
    for w in (4, 8, 16):
        records.append(
            {
                "width": w,
                "kind": "counting",
                "comparators": bitonic_comparators(w),
                "origin": f"seed:ahs-bitonic-{w}",
                "notes": "AHS bitonic counting network; depth matches the best known "
                "sorting depth at this width from 2-balancers",
            }
        )
    return records
