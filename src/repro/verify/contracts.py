"""Contract verifiers for the paper's network families (§3.2).

Each family promises a step-property output only for inputs satisfying a
precondition (merger: every input step; staircase-merger: step inputs with
the p-staircase property; two-merger: two step inputs; bitonic-converter: a
bitonic input).  These helpers generate valid random inputs for each
contract and check the conclusion, so the same machinery drives unit tests,
hypothesis properties, and the per-experiment benches.

Convention: a multi-input network is a single :class:`Network` whose input
sequence is the concatenation ``X_0 ++ X_1 ++ ... `` of its input sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.network import Network
from ..core.sequences import is_step, make_step
from ..sim.count_sim import propagate_counts
from .counting import step_mask

__all__ = [
    "ContractViolation",
    "merger_inputs",
    "staircase_inputs",
    "two_merger_inputs",
    "bitonic_inputs",
    "check_contract_batch",
    "verify_merger",
    "verify_staircase_merger",
    "verify_two_merger",
    "verify_bitonic_converter",
]


@dataclass(frozen=True)
class ContractViolation:
    """Witness: a precondition-satisfying input with a non-step output."""

    input_counts: np.ndarray
    output_counts: np.ndarray
    contract: str

    def __str__(self) -> str:
        return (
            f"{self.contract} violation: input {self.input_counts.tolist()} "
            f"-> output {self.output_counts.tolist()}"
        )


# ---------------------------------------------------------------------------
# Input generators (each returns a (B, total_width) batch)
# ---------------------------------------------------------------------------


def merger_inputs(
    lengths: list[int], batch: int, rng: np.random.Generator, max_total: int = 60
) -> np.ndarray:
    """Concatenated step sequences, one per input of the given lengths."""
    cols = []
    for ln in lengths:
        totals = rng.integers(0, max_total + 1, size=batch)
        bases = rng.integers(0, 3, size=batch)
        block = np.stack([make_step(ln, int(t), int(b)) for t, b in zip(totals, bases)])
        cols.append(block)
    return np.concatenate(cols, axis=1)


def staircase_inputs(
    r: int, p: int, q: int, batch: int, rng: np.random.Generator, max_total: int = 200
) -> np.ndarray:
    """``q`` step sequences of length ``r*p`` satisfying the p-staircase
    property: sums ``S_0 >= S_1 >= ... >= S_{q-1} >= S_0 - p``."""
    ln = r * p
    out = np.empty((batch, ln * q), dtype=np.int64)
    for row in range(batch):
        base_total = int(rng.integers(0, max_total + 1))
        deltas = np.sort(rng.integers(0, p + 1, size=q))[::-1]  # non-increasing in [0, p]
        for i in range(q):
            out[row, i * ln : (i + 1) * ln] = make_step(ln, base_total + int(deltas[i]))
    return out


def two_merger_inputs(
    p: int, q0: int, q1: int, batch: int, rng: np.random.Generator, max_total: int = 60
) -> np.ndarray:
    """Two step sequences of lengths ``p*q0`` and ``p*q1``, concatenated."""
    return merger_inputs([p * q0, p * q1], batch, rng, max_total)


def bitonic_inputs(width: int, batch: int, rng: np.random.Generator) -> np.ndarray:
    """Random bitonic sequences (rotations of step sequences are exactly the
    1-smooth at-most-two-transition sequences)."""
    out = np.empty((batch, width), dtype=np.int64)
    for row in range(batch):
        total = int(rng.integers(0, width + 1))
        base = int(rng.integers(0, 4))
        seq = make_step(width, total, base)
        out[row] = np.roll(seq, int(rng.integers(0, width)))
    return out


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------


def check_contract_batch(net: Network, batch: np.ndarray, contract: str) -> ContractViolation | None:
    """Propagate a precondition-satisfying batch; first non-step output
    (if any) becomes the violation witness."""
    outs = propagate_counts(net, batch)
    if outs.ndim == 1:
        outs = outs[None, :]
        batch = batch[None, :]
    ok = step_mask(outs)
    if np.all(ok):
        return None
    idx = int(np.argmin(ok))
    return ContractViolation(batch[idx].copy(), outs[idx].copy(), contract)


def verify_merger(
    net: Network, lengths: list[int], trials: int = 256, seed: int = 0
) -> ContractViolation | None:
    """Check the merger contract over random step inputs."""
    rng = np.random.default_rng(seed)
    batch = merger_inputs(lengths, trials, rng)
    return check_contract_batch(net, batch, f"merger{tuple(lengths)}")


def verify_staircase_merger(
    net: Network, r: int, p: int, q: int, trials: int = 256, seed: int = 0
) -> ContractViolation | None:
    """Check the staircase-merger contract over random staircase inputs."""
    rng = np.random.default_rng(seed)
    batch = staircase_inputs(r, p, q, trials, rng)
    return check_contract_batch(net, batch, f"staircase({r},{p},{q})")


def verify_two_merger(
    net: Network, p: int, q0: int, q1: int, trials: int = 256, seed: int = 0
) -> ContractViolation | None:
    """Check the two-merger contract over random pairs of step inputs."""
    rng = np.random.default_rng(seed)
    batch = two_merger_inputs(p, q0, q1, trials, rng)
    return check_contract_batch(net, batch, f"two_merger({p},{q0},{q1})")


def verify_bitonic_converter(
    net: Network, trials: int = 256, seed: int = 0
) -> ContractViolation | None:
    """Check the bitonic-converter contract over random bitonic inputs."""
    rng = np.random.default_rng(seed)
    batch = bitonic_inputs(net.width, trials, rng)
    return check_contract_batch(net, batch, "bitonic_converter")
