"""Counting-network verification: step-property checks over count batches.

A balancing network is a *counting network* iff its quiescent output counts
satisfy the step property for **every** input count vector (paper §3.2).
Quiescent counts are schedule-independent, so checking the deterministic
count propagation suffices — the asynchronous token simulator cross-checks
that fact separately in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.network import Network
from ..core.sequences import is_step
from ..sim.count_sim import propagate_counts
from .exhaustive import (
    iter_packed_zero_one,
    packed_descending_violations,
    witness_from_lane,
)
from .inputs import all_zero_one, exhaustive_counts, random_counts, structured_counts

__all__ = [
    "CountingViolation",
    "ZERO_ONE_EXHAUSTIVE_WIDTH",
    "check_step_batch",
    "find_counting_violation",
    "minimize_violation",
    "verify_counting",
]

#: Widths up to this get a dedicated exhaustive 0-1 sweep (all ``2^w``
#: boolean count vectors) inside :func:`find_counting_violation` — the
#: ``c=1`` slice of the bounded exhaustive stage, promoted because the
#: bit-sliced backend makes it nearly free.
ZERO_ONE_EXHAUSTIVE_WIDTH = 16


@dataclass(frozen=True)
class CountingViolation:
    """A witness input whose output breaks the step property."""

    input_counts: np.ndarray
    output_counts: np.ndarray

    def __str__(self) -> str:
        return (
            f"counting violation: input {self.input_counts.tolist()} "
            f"-> output {self.output_counts.tolist()} (not a step sequence)"
        )


def step_mask(outputs: np.ndarray) -> np.ndarray:
    """Boolean per row of a ``(B, w)`` batch: row has the step property."""
    if outputs.ndim == 1:
        outputs = outputs[None, :]
    non_increasing = np.all(outputs[:, :-1] >= outputs[:, 1:], axis=1)
    bounded = (outputs[:, 0] - outputs[:, -1]) <= 1
    return non_increasing & bounded


def check_step_batch(net: Network, batch: np.ndarray) -> CountingViolation | None:
    """Propagate a batch of count vectors; return the first violation."""
    outs = propagate_counts(net, batch)
    if outs.ndim == 1:
        outs = outs[None, :]
        batch = np.asarray(batch)[None, :]
    ok = step_mask(outs)
    if np.all(ok):
        return None
    idx = int(np.argmin(ok))
    return CountingViolation(np.asarray(batch)[idx].copy(), outs[idx].copy())


def _zero_one_stage(net: Network, backend: str) -> CountingViolation | None:
    """Exhaustive sweep of all ``2^w`` 0-1 count vectors.

    On 0-1 inputs the quiescent counting semantics of a pristine balancer
    coincides with the bitwise compare-exchange, so the bit-sliced engine
    covers the space in ``2^w / 64`` packed words.  Networks carrying
    semantic fault overrides cannot ride one bit per wire (a stuck
    balancer concentrates its whole total, up to ``p``, on one port), so
    they — and ``backend="int64"`` — take the int64 engine over the same
    inputs in the same order.  Either engine returns the identical first
    violation.
    """
    w = net.width
    overridden = bool(getattr(net, "fault_overrides", None))
    if backend == "bitsliced" and not overridden:
        from ..core.bitplan import evaluate_zero_one_packed

        for packed, base in iter_packed_zero_one(w):
            viol = packed_descending_violations(evaluate_zero_one_packed(net, packed))
            if w < 6:
                viol &= np.uint64((1 << (1 << w)) - 1)
            if viol.any():
                word_idx = int(np.nonzero(viol)[0][0])
                word = int(viol[word_idx])
                lane = base + word_idx * 64 + ((word & -word).bit_length() - 1)
                witness = witness_from_lane(w, lane).astype(np.int64)
                return check_step_batch(net, witness[None, :])
        return None
    vectors = all_zero_one(w).astype(np.int64)
    for start in range(0, vectors.shape[0], 65_536):
        v = check_step_batch(net, vectors[start : start + 65_536])
        if v is not None:
            return v
    return None


def find_counting_violation(
    net: Network,
    rng: np.random.Generator | None = None,
    random_batches: int = 8,
    batch_size: int = 512,
    max_count: int = 64,
    exhaustive_bound: int = 200_000,
    backend: str = "auto",
) -> CountingViolation | None:
    """Search for an input count vector violating the step property.

    Strategy: structured adversarial vectors first (they catch almost every
    broken network immediately), then an exhaustive 0-1 sweep for ``width
    <= ZERO_ONE_EXHAUSTIVE_WIDTH`` (bit-sliced by default — 64 vectors per
    uint64 word), then the bounded exhaustive sweeps for totals up to 3
    when ``(c+1)^w`` fits under ``exhaustive_bound``, then random batches.
    ``backend`` only selects the 0-1 engine; the inputs covered — and
    therefore the verdict and witness — are identical on every backend.
    Returns ``None`` when no violation was found (evidence, not proof,
    except when the exhaustive sweeps covered the space for small totals).
    """
    if backend not in ("auto", "int64", "bitsliced"):
        raise ValueError(f"unknown backend {backend!r}")
    rng = rng or np.random.default_rng(0)
    w = net.width

    v = check_step_batch(net, structured_counts(w))
    if v is not None:
        return v

    zero_one_done = False
    if w <= ZERO_ONE_EXHAUSTIVE_WIDTH:
        engine = "bitsliced" if backend == "auto" else backend
        v = _zero_one_stage(net, engine)
        if v is not None:
            return v
        zero_one_done = True

    for c in (1, 2, 3):
        if c == 1 and zero_one_done:
            continue  # the 0-1 stage already covered {0,1}^w exhaustively
        if (c + 1) ** w <= exhaustive_bound:
            for batch in exhaustive_counts(w, c):
                v = check_step_batch(net, batch)
                if v is not None:
                    return v

    for _ in range(random_batches):
        v = check_step_batch(net, random_counts(w, batch_size, rng, max_count))
        if v is not None:
            return v
    return None


def minimize_violation(
    net: Network, violation: CountingViolation, max_passes: int = 64
) -> CountingViolation:
    """Shrink a violating input to a locally-minimal witness.

    Greedy per-coordinate reduction (zero, halve, decrement — biggest
    first), keeping any change that still breaks the step property, until a
    full pass makes no progress.  The result is locally minimal: no single
    coordinate can be reduced further without losing the violation.  Small
    witnesses make the failure legible — ``repro verify`` prints them, and
    the fuzzer (:mod:`repro.faults.fuzzer`) uses the same discipline.
    """
    cur = np.array(violation.input_counts, dtype=np.int64, copy=True)

    def fails(vec: np.ndarray) -> bool:
        return not bool(step_mask(propagate_counts(net, vec[None, :]))[0])

    if not fails(cur):  # stale witness (e.g. wrong network): return as-is
        return violation
    for _ in range(max_passes):
        progressed = False
        for i in range(cur.shape[0]):
            for candidate_value in (0, int(cur[i]) // 2, int(cur[i]) - 1):
                if candidate_value < 0 or candidate_value >= cur[i]:
                    continue
                candidate = cur.copy()
                candidate[i] = candidate_value
                if fails(candidate):
                    cur = candidate
                    progressed = True
                    break
        if not progressed:
            break
    return CountingViolation(cur, propagate_counts(net, cur))


def verify_counting(net: Network, **kwargs) -> bool:
    """True when no counting violation was found (see
    :func:`find_counting_violation` for the search budget)."""
    return find_counting_violation(net, **kwargs) is None
