"""Verification: counting-property search, 0-1 sorting proofs, contracts."""

from .counting import (
    ZERO_ONE_EXHAUSTIVE_WIDTH,
    CountingViolation,
    check_step_batch,
    find_counting_violation,
    minimize_violation,
    step_mask,
    verify_counting,
)
from .exhaustive import exhaustive_sorting_witness, iter_packed_zero_one
from .sorting import (
    EXHAUSTIVE_LIMITS,
    SortingViolation,
    find_sorting_violation,
    is_sorting_network,
    sorts_batch,
)
from .contracts import (
    ContractViolation,
    bitonic_inputs,
    check_contract_batch,
    merger_inputs,
    staircase_inputs,
    two_merger_inputs,
    verify_bitonic_converter,
    verify_merger,
    verify_staircase_merger,
    verify_two_merger,
)
from .inputs import all_zero_one, exhaustive_counts, random_counts, structured_counts
from .smoothing import SmoothingViolation, find_smoothing_violation, is_smoother, observed_smoothness

__all__ = [
    "ZERO_ONE_EXHAUSTIVE_WIDTH",
    "EXHAUSTIVE_LIMITS",
    "exhaustive_sorting_witness",
    "iter_packed_zero_one",
    "CountingViolation",
    "check_step_batch",
    "find_counting_violation",
    "minimize_violation",
    "step_mask",
    "verify_counting",
    "SortingViolation",
    "find_sorting_violation",
    "is_sorting_network",
    "sorts_batch",
    "ContractViolation",
    "bitonic_inputs",
    "check_contract_batch",
    "merger_inputs",
    "staircase_inputs",
    "two_merger_inputs",
    "verify_bitonic_converter",
    "verify_merger",
    "verify_staircase_merger",
    "verify_two_merger",
    "all_zero_one",
    "exhaustive_counts",
    "random_counts",
    "structured_counts",
    "SmoothingViolation",
    "find_smoothing_violation",
    "is_smoother",
    "observed_smoothness",
]
