"""Sorting-network verification via the 0-1 principle.

The 0-1 principle extends verbatim to networks of ``p``-comparators: a
comparator network sorts every input iff it sorts every 0-1 input, because
comparators commute with monotone maps.  Exhaustive 0-1 checking costs
``2^w`` evaluations — batched and vectorized, practical to ``w`` around 20;
beyond that we sample 0-1 vectors and random permutations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.network import Network
from ..sim.sort_sim import evaluate_comparators
from .exhaustive import exhaustive_sorting_witness
from .inputs import all_zero_one

__all__ = [
    "SortingViolation",
    "EXHAUSTIVE_LIMITS",
    "is_sorting_network",
    "find_sorting_violation",
    "sorts_batch",
]

#: Default exhaustive-proof ceiling per backend: the bit-sliced sweep
#: (64 inputs per uint64 word, branchless AND/OR kernels) affords 2^24
#: evaluations where the int64 path stops at 2^20.
EXHAUSTIVE_LIMITS = {"int64": 20, "bitsliced": 24}


@dataclass(frozen=True)
class SortingViolation:
    """A witness input the network fails to sort (descending)."""

    input_values: np.ndarray
    output_values: np.ndarray

    def __str__(self) -> str:
        return (
            f"sorting violation: input {self.input_values.tolist()} "
            f"-> output {self.output_values.tolist()} (not non-increasing)"
        )


def sorts_batch(net: Network, batch: np.ndarray) -> SortingViolation | None:
    """Evaluate a ``(B, w)`` batch; return the first unsorted output."""
    outs = evaluate_comparators(net, batch)
    if outs.ndim == 1:
        outs = outs[None, :]
        batch = np.asarray(batch)[None, :]
    ok = np.all(outs[:, :-1] >= outs[:, 1:], axis=1)
    if np.all(ok):
        return None
    idx = int(np.argmin(ok))
    return SortingViolation(np.asarray(batch)[idx].copy(), outs[idx].copy())


def find_sorting_violation(
    net: Network,
    exhaustive_limit: int | None = None,
    rng: np.random.Generator | None = None,
    samples: int = 20_000,
    chunk: int = 65_536,
    backend: str = "auto",
) -> SortingViolation | None:
    """Search for an input the network fails to sort.

    For ``width <= exhaustive_limit`` this is a *proof* by the 0-1
    principle (all ``2^w`` 0-1 vectors are checked).  ``backend`` selects
    the exhaustive engine: ``"bitsliced"`` (the default under ``"auto"``)
    sweeps 64 packed inputs per uint64 word, ``"int64"`` keeps the legacy
    chunked comparator evaluation.  Both enumerate in the same order and
    return identical verdicts and witnesses; ``exhaustive_limit=None``
    resolves to the backend's ceiling (:data:`EXHAUSTIVE_LIMITS`).  For
    wider networks, ``samples`` random 0-1 vectors and random permutations
    are tried instead (evidence only, identical on every backend).
    """
    if backend not in ("auto", "int64", "bitsliced"):
        raise ValueError(f"unknown backend {backend!r}")
    engine = "bitsliced" if backend == "auto" else backend
    if exhaustive_limit is None:
        exhaustive_limit = EXHAUSTIVE_LIMITS[engine]
    w = net.width
    if w <= exhaustive_limit:
        if engine == "bitsliced":
            witness = exhaustive_sorting_witness(net)
            if witness is None:
                return None
            # Re-evaluate the single witness on the legacy path so the
            # reported violation is byte-identical across backends.
            return sorts_batch(net, witness[None, :])
        vectors = all_zero_one(w)
        for start in range(0, vectors.shape[0], chunk):
            v = sorts_batch(net, vectors[start : start + chunk])
            if v is not None:
                return v
        return None
    rng = rng or np.random.default_rng(0)
    zo = (rng.random((samples // 2, w)) < rng.random((samples // 2, 1))).astype(np.int8)
    v = sorts_batch(net, zo)
    if v is not None:
        return v
    perms = np.argsort(rng.random((samples // 2, w)), axis=1).astype(np.int64)
    return sorts_batch(net, perms)


def is_sorting_network(net: Network, **kwargs) -> bool:
    """True when no sorting violation was found.  Exact (a proof) whenever
    ``net.width <= exhaustive_limit``."""
    return find_sorting_violation(net, **kwargs) is None
