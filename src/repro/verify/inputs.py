"""Input generators for counting-network verification.

No finite analogue of the 0-1 principle is known for counting networks, so
verification combines exhaustive bounded searches (tiny widths), structured
adversarial count vectors, and randomized sampling.  All generators yield
``(B, w)`` integer batches ready for :func:`repro.sim.propagate_counts`.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

__all__ = [
    "exhaustive_counts",
    "structured_counts",
    "random_counts",
    "all_zero_one",
]


def exhaustive_counts(width: int, max_count: int, batch: int = 4096) -> Iterator[np.ndarray]:
    """Every vector in ``{0..max_count}^width``, in batches.

    Feasible only for tiny ``(max_count+1)**width``; callers should bound the
    product.  Used to *prove* small networks are counting networks up to a
    token bound.
    """
    total = (max_count + 1) ** width
    if total > 20_000_000:
        raise ValueError(f"exhaustive space of {total} vectors is too large; bound it")
    it = itertools.product(range(max_count + 1), repeat=width)
    while True:
        chunk = list(itertools.islice(it, batch))
        if not chunk:
            return
        yield np.array(chunk, dtype=np.int64)


def structured_counts(width: int, heavy: int = 50) -> np.ndarray:
    """Adversarial count vectors that break naive balancing schemes.

    Includes: all tokens on one wire (each wire), alternating bursts,
    descending/ascending ramps, near-step vectors with one perturbed entry,
    and all-equal loads.  These are exactly the shapes for which the
    bubble-sort network of Figure 3 fails to count.
    """
    rows: list[np.ndarray] = []
    eye = np.eye(width, dtype=np.int64) * heavy
    rows.extend(eye)  # single heavy wire
    rows.append(np.zeros(width, dtype=np.int64))
    rows.append(np.full(width, heavy, dtype=np.int64))
    rows.append(np.arange(width, dtype=np.int64))  # ascending ramp
    rows.append(np.arange(width, dtype=np.int64)[::-1].copy())  # descending ramp
    alt = np.zeros(width, dtype=np.int64)
    alt[::2] = heavy
    rows.append(alt)
    rows.append(heavy - alt)
    # step vectors with one bumped coordinate
    base = (np.arange(width, dtype=np.int64)[::-1] // max(1, width // 3)) + 1
    for k in range(width):
        v = base.copy()
        v[k] += heavy // 2
        rows.append(v)
    return np.stack(rows)


def random_counts(
    width: int, batch: int, rng: np.random.Generator, max_count: int = 64
) -> np.ndarray:
    """Uniform random count vectors, plus sparse/heavy-tailed rows.

    Half the batch is uniform in ``[0, max_count]``; the other half is
    sparse (most wires empty) to probe low-token regimes where off-by-one
    step violations hide.
    """
    if batch < 2:
        return rng.integers(0, max_count + 1, size=(batch, width), dtype=np.int64)
    half = batch // 2
    uniform = rng.integers(0, max_count + 1, size=(half, width), dtype=np.int64)
    sparse = rng.integers(0, max_count + 1, size=(batch - half, width), dtype=np.int64)
    mask = rng.random(sparse.shape) < 0.7
    sparse[mask] = 0
    return np.concatenate([uniform, sparse])


def all_zero_one(width: int) -> np.ndarray:
    """All ``2**width`` 0-1 vectors as a ``(2^w, w)`` int8 array (0-1
    principle input set for sorting verification)."""
    if width > 22:
        raise ValueError(f"2**{width} zero-one vectors is too many; sample instead")
    n = 1 << width
    idx = np.arange(n, dtype=np.int64)
    bits = (idx[:, None] >> np.arange(width - 1, -1, -1)[None, :]) & 1
    return bits.astype(np.int8)
