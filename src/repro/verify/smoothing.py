"""Smoothing properties of balancing networks.

A balancing network is a **k-smoother** if its quiescent output is always
k-smooth (max - min <= k), a strictly weaker guarantee than counting
(counting = step = 1-smooth *with* the excess on the upper wires).
Smoothers matter in practice: they make good load balancers even when full
counting is unnecessary, and several classic networks that fail to count
(odd-even, truncated periodic) are still excellent smoothers.  The paper's
§3.1 introduces k-smoothness as the analytic workhorse for the staircase
argument; this module measures it on whole networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.network import Network
from ..sim.count_sim import propagate_counts
from .inputs import exhaustive_counts, random_counts, structured_counts

__all__ = ["SmoothingViolation", "find_smoothing_violation", "observed_smoothness", "is_smoother"]


@dataclass(frozen=True)
class SmoothingViolation:
    """Witness input whose output exceeds the target smoothness."""

    input_counts: np.ndarray
    output_counts: np.ndarray
    smoothness: int
    target: int

    def __str__(self) -> str:
        return (
            f"smoothing violation: input {self.input_counts.tolist()} -> output "
            f"{self.output_counts.tolist()} is {self.smoothness}-smooth (target {self.target})"
        )


def _batch_smoothness(outs: np.ndarray) -> np.ndarray:
    return outs.max(axis=1) - outs.min(axis=1)


def find_smoothing_violation(
    net: Network,
    k: int,
    rng: np.random.Generator | None = None,
    random_batches: int = 6,
    batch_size: int = 512,
    max_count: int = 64,
    exhaustive_bound: int = 100_000,
) -> SmoothingViolation | None:
    """Search for an input whose output is not k-smooth (same search
    strategy as the counting-violation search)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    rng = rng or np.random.default_rng(0)

    def check(batch: np.ndarray) -> SmoothingViolation | None:
        outs = propagate_counts(net, batch)
        if outs.ndim == 1:
            outs = outs[None, :]
            nonlocal_batch = np.asarray(batch)[None, :]
        else:
            nonlocal_batch = np.asarray(batch)
        sm = _batch_smoothness(outs)
        bad = np.nonzero(sm > k)[0]
        if bad.size == 0:
            return None
        i = int(bad[0])
        return SmoothingViolation(nonlocal_batch[i].copy(), outs[i].copy(), int(sm[i]), k)

    v = check(structured_counts(net.width))
    if v is not None:
        return v
    for c in (1, 2):
        if (c + 1) ** net.width <= exhaustive_bound:
            for batch in exhaustive_counts(net.width, c):
                v = check(batch)
                if v is not None:
                    return v
    for _ in range(random_batches):
        v = check(random_counts(net.width, batch_size, rng, max_count))
        if v is not None:
            return v
    return None


def observed_smoothness(
    net: Network,
    rng: np.random.Generator | None = None,
    batches: int = 8,
    batch_size: int = 1024,
    max_count: int = 64,
) -> int:
    """Largest output smoothness observed over the search inputs — a lower
    bound on the network's true smoothing constant."""
    rng = rng or np.random.default_rng(0)
    worst = 0
    outs = propagate_counts(net, structured_counts(net.width))
    worst = max(worst, int(_batch_smoothness(outs).max()))
    for _ in range(batches):
        outs = propagate_counts(net, random_counts(net.width, batch_size, rng, max_count))
        worst = max(worst, int(_batch_smoothness(outs).max()))
    return worst


def is_smoother(net: Network, k: int, **kwargs) -> bool:
    """True when no k-smoothing violation was found."""
    return find_smoothing_violation(net, k, **kwargs) is None
