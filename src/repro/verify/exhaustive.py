"""Exhaustive 0-1 sweeps, generated directly in packed uint64 form.

The 0-1 principle reduces "does this network sort?" to ``2^w`` boolean
evaluations.  The bit-sliced backend (:mod:`repro.core.bitplan`) evaluates
64 of them per uint64 word; this module *generates* the full input set
already packed — ``2^w / 64`` words per wire, with no ``(2^w, w)``
materialization and no packing pass:

* enumeration order matches :func:`repro.verify.inputs.all_zero_one`
  exactly — input index ``n`` has wire ``k`` carrying bit
  ``(n >> (w-1-k)) & 1``, so witnesses found packed are the *same*
  witnesses the int64 path reports;
* within a word, bit ``s = w-1-k < 6`` is a fixed 64-bit square wave of
  period ``2^(s+1)`` (``0xAAAA…``, ``0xCCCC…``, …); bit ``s >= 6`` is
  constant per word — all-ones when ``(word_index >> (s-6)) & 1``;
* widths below 6 fit one word whose surplus lanes replicate the ``2^w``
  real inputs (period divides 64), which cannot create a spurious verdict
  and never holds the *minimal* witness.

:func:`exhaustive_sorting_witness` sweeps the whole space through
:func:`~repro.core.bitplan.evaluate_zero_one_packed` and returns the first
(lexicographically minimal) unsorted input, or ``None`` as a proof.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.bitplan import LANES, evaluate_zero_one_packed
from ..core.network import Network

__all__ = [
    "iter_packed_zero_one",
    "exhaustive_sorting_witness",
    "packed_descending_violations",
    "witness_from_lane",
]

#: 64-bit square waves: bit ``i`` of ``_LOW_PATTERNS[s]`` is ``(i >> s) & 1``.
_LOW_PATTERNS = tuple(
    np.uint64(sum(1 << i for i in range(64) if (i >> s) & 1)) for s in range(6)
)

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def iter_packed_zero_one(
    width: int, lanes_per_batch: int = 1 << 18
) -> Iterator[tuple[np.ndarray, int]]:
    """Yield ``(packed, base)`` batches covering all ``2^width`` 0-1 inputs.

    ``packed`` is ``(width, nwords)`` uint64; lane ``i`` of word ``j``
    holds input index ``base + 64*j + i`` in ``all_zero_one`` order.  For
    ``width < 6`` the single word's high lanes repeat the input set
    (harmless: duplicates of already-covered inputs).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    total = 1 << width
    if total <= LANES:
        packed = np.empty((width, 1), dtype=np.uint64)
        for k in range(width):
            packed[k, 0] = _LOW_PATTERNS[width - 1 - k]
        yield packed, 0
        return
    nwords_total = total // LANES
    nwords_batch = max(1, lanes_per_batch // LANES)
    for wstart in range(0, nwords_total, nwords_batch):
        nw = min(nwords_batch, nwords_total - wstart)
        packed = np.empty((width, nw), dtype=np.uint64)
        j = np.arange(wstart, wstart + nw, dtype=np.uint64)
        for k in range(width):
            s = width - 1 - k
            if s < 6:
                packed[k] = _LOW_PATTERNS[s]
            else:
                packed[k] = ((j >> np.uint64(s - 6)) & np.uint64(1)) * _ALL_ONES
        yield packed, wstart * LANES


def packed_descending_violations(out: np.ndarray) -> np.ndarray:
    """Per-word mask of lanes whose output is not non-increasing.

    ``out`` is ``(w, nwords)`` packed output words; a lane violates when
    some adjacent pair reads ``0`` above ``1`` (``~out[r] & out[r+1]``).
    For 0-1 sequences non-increasing is also exactly the step property —
    ``out[0] - out[-1] <= 1`` holds for free.
    """
    if out.shape[0] < 2:
        return np.zeros(out.shape[1], dtype=np.uint64)
    return np.bitwise_or.reduce(~out[:-1] & out[1:], axis=0)


def witness_from_lane(width: int, index: int) -> np.ndarray:
    """Input vector ``index`` in ``all_zero_one`` order, as int8 (the dtype
    the int64 verification path hands to the evaluator)."""
    return np.array(
        [(index >> (width - 1 - k)) & 1 for k in range(width)], dtype=np.int8
    )


def _first_lane(viol: np.ndarray, base: int) -> int:
    word_idx = int(np.nonzero(viol)[0][0])
    word = int(viol[word_idx])
    return base + word_idx * LANES + ((word & -word).bit_length() - 1)


def exhaustive_sorting_witness(
    net: Network, lanes_per_batch: int = 1 << 18
) -> np.ndarray | None:
    """First 0-1 input ``net`` fails to sort descending, or ``None``.

    Covers all ``2^w`` inputs bit-sliced (comparator semantics; fault
    overrides pass through unexchanged, matching
    :func:`~repro.sim.sort_sim.evaluate_comparators`).  ``None`` is a
    proof by the 0-1 principle; a returned witness is the lexicographically
    first violating input — identical to what the int64 sweep over
    :func:`~repro.verify.inputs.all_zero_one` finds.
    """
    w = net.width
    for packed, base in iter_packed_zero_one(w, lanes_per_batch):
        viol = packed_descending_violations(evaluate_zero_one_packed(net, packed))
        if w < 6:  # surplus replica lanes in the single word are not inputs
            viol &= np.uint64((1 << (1 << w)) - 1)
        if viol.any():
            return witness_from_lane(w, _first_lane(viol, base))
    return None
