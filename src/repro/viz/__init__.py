"""ASCII rendering and machine-readable exports of networks."""

from .render import render_matrix, render_network, render_sequence
from .export import to_dot, to_layered_json

__all__ = ["render_matrix", "render_network", "render_sequence", "to_dot", "to_layered_json"]
