"""ASCII rendering of networks and step sequences.

Regenerates the paper's figure content programmatically: layer diagrams in
the style of Figures 1-3 (wires as horizontal lines, balancers as vertical
spans) and shaded strips for step/bitonic sequences in the style of
Figures 5 and 9-13.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.network import Network

__all__ = ["render_network", "render_sequence", "render_matrix"]


def render_network(net: Network, max_width: int = 40, max_layers: int = 60) -> str:
    """Draw ``net`` as ASCII art: one row per *sequence position*, one column
    group per layer; a balancer is a vertical span of ``|`` with ``o`` at
    the wires it touches.

    Positions are tracked through the SSA graph so each balancer is drawn at
    the rows its wires occupy at that layer.  Oversized networks are
    truncated with a note.
    """
    if net.width > max_width:
        return f"[{net.name}: width {net.width} exceeds render limit {max_width}]"
    layers = net.layers()
    if len(layers) > max_layers:
        return f"[{net.name}: depth {len(layers)} exceeds render limit {max_layers}]"

    # Track which row (sequence position) each live wire occupies.  A
    # balancer's outputs inherit the rows of its inputs, sorted so the top
    # output takes the topmost row.
    row_of: dict[int, int] = {w: i for i, w in enumerate(net.inputs)}
    cols: list[list[str]] = []
    for layer in layers:
        col = [["-", " "] for _ in range(net.width)]
        for bal in layer:
            rows = sorted(row_of.pop(w) for w in bal.inputs)
            for out_wire, row in zip(bal.outputs, rows):
                row_of[out_wire] = row
            for r in range(rows[0], rows[-1] + 1):
                col[r][1] = "|"
            for r in rows:
                col[r][0] = "o" if col[r][0] == "-" else col[r][0]
                col[r][1] = "+" if r in rows else col[r][1]
        cols.append(["".join(c) for c in col])

    # Final permutation: where each output-sequence position currently sits.
    out_rows = [row_of[w] for w in net.outputs]
    lines = []
    for r in range(net.width):
        body = "".join(f"-{cols[d][r]}" for d in range(len(layers)))
        label = out_rows.index(r) if r in out_rows else "?"
        lines.append(f"{r:>3} {body}-> y{label}")
    header = f"{net.name}: width={net.width} depth={net.depth} size={net.size}"
    return header + "\n" + "\n".join(lines)


_SHADES = " .:-=+*#%@"


def render_sequence(x: Iterable[int], label: str = "") -> str:
    """One-line shaded strip for a count sequence (darker = more tokens)."""
    arr = np.asarray(list(x), dtype=np.int64)
    if arr.size == 0:
        return f"{label}[]"
    lo, hi = int(arr.min()), int(arr.max())
    span = max(1, hi - lo)
    chars = "".join(_SHADES[min(len(_SHADES) - 1, (v - lo) * (len(_SHADES) - 1) // span)] for v in arr)
    return f"{label}[{chars}] min={lo} max={hi}"


def render_matrix(x: Iterable[int], rows: int, cols: int, label: str = "") -> str:
    """Shaded ``rows x cols`` block (row-major) for a count sequence, in the
    style of the paper's staircase figures."""
    arr = np.asarray(list(x), dtype=np.int64).reshape(rows, cols)
    lo, hi = int(arr.min()), int(arr.max())
    span = max(1, hi - lo)
    lines = [label] if label else []
    for r in range(rows):
        lines.append(
            "".join(
                _SHADES[min(len(_SHADES) - 1, (int(v) - lo) * (len(_SHADES) - 1) // span)]
                for v in arr[r]
            )
        )
    return "\n".join(lines)
