"""Machine-readable network exports: Graphviz DOT and layered JSON.

``to_dot`` renders the balancer DAG for external tooling (graphviz, gephi);
``to_layered_json`` emits the layer/width-group structure the compiled
evaluator uses — convenient for porting a network to hardware description
generators or other languages.
"""

from __future__ import annotations

import json

from ..core.compiled import compile_network
from ..core.network import Network

__all__ = ["to_dot", "to_layered_json"]


def to_dot(net: Network, rankdir: str = "LR") -> str:
    """Graphviz DOT source for the balancer DAG.

    Nodes: one per balancer (box, labelled with its width), plus input and
    output terminals.  Edges follow wires; the edge label is the balancer
    port.
    """
    lines = [
        f'digraph "{net.name}" {{',
        f"  rankdir={rankdir};",
        "  node [shape=box, fontsize=10];",
    ]
    # Producers: wire -> (node name, port) feeding it.
    producer: dict[int, tuple[str, int]] = {}
    for pos, w in enumerate(net.inputs):
        name = f"in{pos}"
        lines.append(f'  {name} [shape=plaintext, label="x{pos}"];')
        producer[w] = (name, 0)
    for b in net.balancers:
        name = f"b{b.index}"
        lines.append(f'  {name} [label="{b.width}-bal"];')
        for port, w in enumerate(b.outputs):
            producer[w] = (name, port)
    for b in net.balancers:
        for port, w in enumerate(b.inputs):
            src, sport = producer[w]
            lines.append(f'  {src} -> b{b.index} [label="{sport}->{port}", fontsize=8];')
    for pos, w in enumerate(net.outputs):
        name = f"out{pos}"
        lines.append(f'  {name} [shape=plaintext, label="y{pos}"];')
        src, sport = producer[w]
        lines.append(f'  {src} -> {name} [label="{sport}", fontsize=8];')
    lines.append("}")
    return "\n".join(lines)


def to_layered_json(net: Network, indent: int | None = None) -> str:
    """JSON document with the layered structure: for each layer, the
    balancers grouped by width with their input/output wire ids."""
    comp = compile_network(net)
    doc = {
        "name": net.name,
        "width": net.width,
        "depth": net.depth,
        "size": net.size,
        "max_balancer_width": net.max_balancer_width,
        "inputs": list(map(int, comp.input_idx)),
        "outputs": list(map(int, comp.output_idx)),
        "layers": [
            [
                {
                    "balancer_width": g.width,
                    "count": int(g.count),
                    "inputs": g.in_idx.tolist(),
                    "outputs": g.out_idx.tolist(),
                }
                for g in layer
            ]
            for layer in comp.layers
        ],
    }
    return json.dumps(doc, indent=indent)
